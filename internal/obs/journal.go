package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ltqp/internal/resource"
)

// JournalRecord is the envelope shared by every line of a JSONL journal.
// The first line is a header (kind "journal_header") carrying the schema
// version; the last is a footer (kind "journal_footer") carrying totals;
// every line between is one Event, distinguished by its event kind. A
// reader dispatches on the kind field alone.
type JournalRecord struct {
	Kind string `json:"kind"`
}

// journalHeaderKind / journalFooterKind are the envelope record kinds.
const (
	journalHeaderKind = "journal_header"
	journalFooterKind = "journal_footer"
)

// JournalHeader is the first line of a journal: the versioned schema
// envelope (like TraceJSON for traces), plus enough provenance to know what
// wrote the file.
type JournalHeader struct {
	Kind      string    `json:"kind"`
	Schema    int       `json:"schema"`
	Engine    string    `json:"engine"`
	GoVersion string    `json:"go_version"`
	Created   time.Time `json:"created"`
}

// JournalFooter is the last line of a journal: how many events were written
// and how many the bounded subscription had to drop.
type JournalFooter struct {
	Kind    string `json:"kind"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// Journal subscribes to a bus and writes every event as one JSON line — a
// replayable record of everything the engine did, analyzed offline by
// `benchreport --replay-journal`. Writes happen on a dedicated goroutine so
// journaling never blocks the engine; the subscription buffer absorbs
// bursts and anything beyond it is counted in the footer's dropped tally.
type Journal struct {
	bw   *bufio.Writer
	sub  *Subscription
	stop chan struct{}
	done chan struct{}

	mu     sync.Mutex
	events int
	err    error
}

// JournalBuffer is the subscription depth of a journal writer: large enough
// that a traversal burst (hundreds of documents, thousands of links) fits
// while a line is being encoded.
const JournalBuffer = 8192

// NewJournal writes the versioned header to w, subscribes to the bus and
// starts journaling. Close flushes, appends the footer and detaches.
func NewJournal(w io.Writer, bus *Bus) (*Journal, error) {
	j := &Journal{
		bw:   bufio.NewWriter(w),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	hdr := JournalHeader{
		Kind:      journalHeaderKind,
		Schema:    EventSchemaVersion,
		Engine:    "ltqp-go",
		GoVersion: runtime.Version(),
		Created:   time.Now().UTC(),
	}
	if err := j.writeLine(hdr); err != nil {
		return nil, err
	}
	j.sub = bus.SubscribeNamed("journal", 0, JournalBuffer)
	go j.run()
	return j, nil
}

func (j *Journal) run() {
	defer close(j.done)
	for {
		select {
		case ev := <-j.sub.C:
			j.write(ev)
		case <-j.stop:
			// Detach first so no new events arrive, then drain the tail.
			j.sub.Close()
			for _, ev := range j.sub.Drain() {
				j.write(ev)
			}
			return
		}
	}
}

func (j *Journal) write(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.encode(ev); err != nil && j.err == nil {
		j.err = err
	}
	j.events++
}

func (j *Journal) encode(v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.bw.Write(data); err != nil {
		return err
	}
	return j.bw.WriteByte('\n')
}

func (j *Journal) writeLine(v interface{}) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.encode(v)
}

// Events reports how many events have been written so far.
func (j *Journal) Events() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// Close stops journaling: it detaches from the bus, writes the buffered
// tail, appends the footer and flushes. The first write error, if any, is
// returned. Safe to call once.
func (j *Journal) Close() error {
	close(j.stop)
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	footer := JournalFooter{Kind: journalFooterKind, Events: j.events, Dropped: j.sub.Dropped()}
	if err := j.encode(footer); err != nil && j.err == nil {
		j.err = err
	}
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// ---------------------------------------------------------------------------
// Offline replay

// ReplayPhase is one reconstructed pipeline phase of a replayed query.
type ReplayPhase struct {
	Name     string
	Start    time.Duration // offset from query start
	Duration time.Duration
}

// ReplayDoc is one dereference reconstructed from the journal.
type ReplayDoc struct {
	URL string
	// Via is the document the link to this one was discovered in (empty for
	// seeds) — the dependency edge critical-path analysis walks.
	Via      string
	Status   int
	Triples  int
	Bytes    int64
	Duration time.Duration
	End      time.Time
	Failed   bool
	Err      string
}

// QueryReplay is the offline reconstruction of one query's execution from
// its journal events: what a live observer would have seen, recovered
// entirely from recorded timestamps.
type QueryReplay struct {
	ID       int64
	Query    string
	Seeds    []string
	Start    time.Time
	End      time.Time
	Duration time.Duration
	Finished bool
	Err      string

	Results int
	TTFR    time.Duration
	HasTTFR bool

	Phases []ReplayPhase
	Docs   []ReplayDoc

	LinksDiscovered int
	LinksQueued     int
	LinksPruned     int
	Retries         int

	// PeakMem / MemBreakdown replay the query's resource_snapshot events:
	// the ledger high-water mark in bytes and the per-layer breakdown
	// string ("" when the query ran without a ledger attached).
	PeakMem      int64
	MemBreakdown string

	// MaxConcurrency / MeanConcurrency profile the dereference overlap,
	// reconstructed by sweeping each document's [End-Duration, End] span.
	MaxConcurrency  int
	MeanConcurrency float64
}

// JournalSummary is a parsed journal: header metadata plus one replay per
// query found in the stream.
type JournalSummary struct {
	Schema    int
	GoVersion string
	Created   time.Time
	Events    int
	Dropped   uint64
	HasFooter bool
	Queries   []*QueryReplay
}

// Replay returns the replay for the given query id, or nil.
func (s *JournalSummary) Replay(id int64) *QueryReplay {
	for _, q := range s.Queries {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// ReadJournal parses a JSONL journal and reconstructs each query's
// timeline. It rejects journals with a missing or mismatched schema.
func ReadJournal(r io.Reader) (*JournalSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	s := &JournalSummary{}
	byID := map[int64]*QueryReplay{}
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// A torn final line is what a crashed writer leaves behind;
			// treat it as truncation. Malformed JSON mid-file is corruption.
			if !sc.Scan() {
				break
			}
			return nil, fmt.Errorf("journal line %d: %w", lineNo, err)
		}
		switch rec.Kind {
		case journalHeaderKind:
			var hdr JournalHeader
			if err := json.Unmarshal([]byte(line), &hdr); err != nil {
				return nil, fmt.Errorf("journal header: %w", err)
			}
			if hdr.Schema != EventSchemaVersion {
				return nil, fmt.Errorf("journal schema %d not supported (want %d)", hdr.Schema, EventSchemaVersion)
			}
			s.Schema = hdr.Schema
			s.GoVersion = hdr.GoVersion
			s.Created = hdr.Created
		case journalFooterKind:
			var f JournalFooter
			if err := json.Unmarshal([]byte(line), &f); err != nil {
				return nil, fmt.Errorf("journal footer: %w", err)
			}
			s.Dropped = f.Dropped
			s.HasFooter = true
		default:
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("journal line %d: %w", lineNo, err)
			}
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Schema == 0 {
		return nil, fmt.Errorf("journal has no header (not an ltqp event journal?)")
	}
	s.Events = len(events)

	// Events were written in delivery order; concurrent publishers can
	// interleave by a few positions, so restore the total order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })

	replay := func(id int64) *QueryReplay {
		q, ok := byID[id]
		if !ok {
			q = &QueryReplay{ID: id}
			byID[id] = q
			s.Queries = append(s.Queries, q)
		}
		return q
	}
	stageStart := map[[2]interface{}]time.Time{}
	for _, ev := range events {
		q := replay(ev.Query)
		switch ev.Kind {
		case EventQueryStarted:
			q.Query = ev.Detail
			q.Seeds = ev.Seeds
			q.Start = ev.Time
		case EventQueryFinished:
			q.End = ev.Time
			q.Finished = true
			q.Results = ev.Rows
			// Prefer the timestamp span so Duration shares an origin with
			// TTFR and phase offsets; the event's own DurationUS is measured
			// from a post-parse origin and would undercount slightly.
			q.Duration = time.Duration(ev.DurationUS) * time.Microsecond
			if !q.Start.IsZero() && ev.Time.After(q.Start) {
				q.Duration = ev.Time.Sub(q.Start)
			}
			q.Err = ev.Err
		case EventStageStarted:
			stageStart[[2]interface{}{ev.Query, ev.Stage}] = ev.Time
		case EventStageFinished:
			start, ok := stageStart[[2]interface{}{ev.Query, ev.Stage}]
			if !ok {
				start = ev.Time.Add(-time.Duration(ev.DurationUS) * time.Microsecond)
			}
			if isCorePhase(ev.Stage) {
				off := time.Duration(0)
				if !q.Start.IsZero() {
					off = start.Sub(q.Start)
				}
				q.Phases = append(q.Phases, ReplayPhase{
					Name:     ev.Stage,
					Start:    off,
					Duration: time.Duration(ev.DurationUS) * time.Microsecond,
				})
			}
		case EventResultEmitted:
			q.Results++
			if !q.HasTTFR && !q.Start.IsZero() {
				q.TTFR = ev.Time.Sub(q.Start)
				q.HasTTFR = true
			}
		case EventDocumentDereferenced:
			d := ReplayDoc{
				URL:      ev.URL,
				Via:      ev.Via,
				Status:   ev.Status,
				Triples:  ev.Triples,
				Bytes:    ev.Bytes,
				Duration: time.Duration(ev.DurationUS) * time.Microsecond,
				End:      ev.Time,
				Failed:   ev.Err != "",
				Err:      ev.Err,
			}
			q.Docs = append(q.Docs, d)
		case EventLinkDiscovered:
			q.LinksDiscovered++
		case EventLinkQueued:
			q.LinksQueued++
		case EventLinkPruned:
			q.LinksPruned++
		case EventRetryScheduled:
			q.Retries++
		case EventResourceSnapshot:
			if ev.MemPeak > q.PeakMem {
				q.PeakMem = ev.MemPeak
				q.MemBreakdown = ev.Detail
			}
		}
	}
	for _, q := range s.Queries {
		q.MaxConcurrency, q.MeanConcurrency = concurrencyProfile(q.Docs)
	}
	return s, nil
}

// isCorePhase reports whether a stage name is one of the engine's four
// pipeline phases (as opposed to a per-operator iterator stage).
func isCorePhase(name string) bool {
	switch name {
	case "parse", "plan", "traverse", "exec":
		return true
	}
	return false
}

// concurrencyProfile sweeps document fetch spans to find how many
// dereferences overlapped: the maximum in flight at once, and the mean
// in-flight count weighted by time (0 when fetches never overlap spans of
// measurable length).
func concurrencyProfile(docs []ReplayDoc) (max int, mean float64) {
	type edge struct {
		t     time.Time
		delta int
	}
	var edges []edge
	for _, d := range docs {
		start := d.End.Add(-d.Duration)
		edges = append(edges, edge{start, 1}, edge{d.End, -1})
	}
	if len(edges) == 0 {
		return 0, 0
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t.Equal(edges[j].t) {
			return edges[i].delta < edges[j].delta
		}
		return edges[i].t.Before(edges[j].t)
	})
	cur := 0
	var weighted float64
	var total time.Duration
	prev := edges[0].t
	for _, e := range edges {
		span := e.t.Sub(prev)
		if span > 0 && cur > 0 {
			weighted += float64(cur) * span.Seconds()
			total += span
		}
		prev = e.t
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	if total > 0 {
		mean = weighted / total.Seconds()
	}
	return max, mean
}

// SlowestDocs returns the n slowest successful-or-failed dereferences,
// slowest first.
func (q *QueryReplay) SlowestDocs(n int) []ReplayDoc {
	docs := make([]ReplayDoc, len(q.Docs))
	copy(docs, q.Docs)
	sort.SliceStable(docs, func(i, j int) bool { return docs[i].Duration > docs[j].Duration })
	if n > 0 && len(docs) > n {
		docs = docs[:n]
	}
	return docs
}

// FailedDocs counts dereferences that ended in error.
func (q *QueryReplay) FailedDocs() int {
	n := 0
	for _, d := range q.Docs {
		if d.Failed {
			n++
		}
	}
	return n
}

// WriteReport renders the replay as a human-readable timeline analysis:
// per-phase wall clock, TTFR, the dereference concurrency profile, and the
// top-N slowest documents — the offline counterpart of watching the live
// SSE feed.
func (s *JournalSummary) WriteReport(w io.Writer, topN int) {
	fmt.Fprintf(w, "journal: schema %d, %d events", s.Schema, s.Events)
	if s.Dropped > 0 {
		fmt.Fprintf(w, " (%d dropped at capture time)", s.Dropped)
	}
	if !s.HasFooter {
		fmt.Fprint(w, " (no footer: journal may be truncated)")
	}
	fmt.Fprintf(w, ", %d queries\n", len(s.Queries))
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	for _, q := range s.Queries {
		fmt.Fprintf(w, "\nquery #%d: %s\n", q.ID, q.Query)
		if len(q.Seeds) > 0 {
			fmt.Fprintf(w, "  seeds: %s\n", strings.Join(q.Seeds, " "))
		}
		status := "did not finish (journal truncated?)"
		if q.Finished {
			status = fmt.Sprintf("finished in %s", ms(q.Duration))
			if q.Err != "" {
				status += " with error: " + q.Err
			}
		}
		ttfr := "no results"
		if q.HasTTFR {
			ttfr = ms(q.TTFR)
		}
		fmt.Fprintf(w, "  %s — %d results, first after %s\n", status, q.Results, ttfr)
		if len(q.Phases) > 0 {
			var parts []string
			for _, p := range q.Phases {
				parts = append(parts, fmt.Sprintf("%s %s (at +%s)", p.Name, ms(p.Duration), ms(p.Start)))
			}
			fmt.Fprintf(w, "  phases: %s\n", strings.Join(parts, " | "))
		}
		fmt.Fprintf(w, "  traversal: %d documents (%d failed), %d links discovered (%d queued, %d pruned), %d retries\n",
			len(q.Docs), q.FailedDocs(), q.LinksDiscovered, q.LinksQueued, q.LinksPruned, q.Retries)
		if q.PeakMem > 0 {
			fmt.Fprintf(w, "  peak memory: %s", resource.FormatBytes(q.PeakMem))
			if q.MemBreakdown != "" {
				fmt.Fprintf(w, " (%s)", q.MemBreakdown)
			}
			fmt.Fprintln(w)
		}
		if len(q.Docs) > 0 {
			fmt.Fprintf(w, "  dereference concurrency: max %d in flight, mean %.2f\n", q.MaxConcurrency, q.MeanConcurrency)
			fmt.Fprintf(w, "  slowest documents:\n")
			for _, d := range q.SlowestDocs(topN) {
				st := fmt.Sprintf("%d", d.Status)
				if d.Failed {
					st = "ERR"
				}
				fmt.Fprintf(w, "    %8s %5s %s\n", ms(d.Duration), st, d.URL)
			}
		}
	}
}

package main

import (
	"fmt"
	"io"
	"os"

	"ltqp/internal/obs"
)

// replayJournal reads an engine event journal (JSONL, written by
// `ltqp-sparql --journal`) and prints the offline timeline reconstruction:
// per-phase wall clock, TTFR, the dereference concurrency profile, and the
// top-N slowest documents per query.
func replayJournal(path string, topN int, out io.Writer) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	summary, err := obs.ReadJournal(r)
	if err != nil {
		return fmt.Errorf("replay-journal: %w", err)
	}
	summary.WriteReport(out, topN)
	return nil
}

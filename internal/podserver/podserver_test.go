package podserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"ltqp/internal/rdf"
	"ltqp/internal/solid"
	"ltqp/internal/turtle"
)

func buildTestPod(base string) *solid.Pod {
	pod := solid.NewPod(base)
	pod.BuildProfile(solid.ProfileInfo{Name: "Zulma"})
	pod.BuildTypeIndex([]solid.TypeRegistration{
		{Class: "http://example.org/Post", InstanceContainer: "posts/"},
	})
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI(base+"posts/p1#it"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://example.org/Post")))
	pod.Add("posts/p1", g)
	secret := rdf.NewGraph()
	secret.Add(rdf.NewTriple(rdf.NewIRI(base+"private/s#it"), rdf.NewIRI("http://example.org/p"), rdf.NewLiteral("secret")))
	pod.AddPrivate("private/s", secret, pod.WebID())
	return pod
}

func newTestServer(t *testing.T) (*Server, *httptest.Server, *solid.Pod) {
	t.Helper()
	ps := New()
	ts := httptest.NewServer(ps)
	t.Cleanup(ts.Close)
	pod := buildTestPod(ts.URL + "/pods/alice/")
	ps.AddPod(pod)
	return ps, ts, pod
}

func get(t *testing.T, client *http.Client, url string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestServeProfileDocument(t *testing.T) {
	_, ts, pod := newTestServer(t)
	resp, body := get(t, ts.Client(), pod.ProfileDocument(), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/turtle" {
		t.Errorf("content type = %s", ct)
	}
	triples, err := turtle.Parse(body, turtle.Options{Base: pod.ProfileDocument()})
	if err != nil {
		t.Fatalf("served document does not parse: %v\n%s", err, body)
	}
	g := rdf.NewGraph()
	g.AddAll(triples)
	me := rdf.NewIRI(pod.WebID())
	if got := g.FirstObject(me, rdf.NewIRI(rdf.PIMStorage)); got != rdf.NewIRI(pod.Base) {
		t.Errorf("storage = %v", got)
	}
}

func TestServeContainers(t *testing.T) {
	_, ts, pod := newTestServer(t)
	resp, body := get(t, ts.Client(), pod.Base, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("root container status = %d", resp.StatusCode)
	}
	for _, want := range []string{"posts/", "profile/", "settings/"} {
		if !strings.Contains(body, want) {
			t.Errorf("root container missing %s:\n%s", want, body)
		}
	}
	// Nested container.
	resp, body = get(t, ts.Client(), pod.Base+"posts/", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "p1") {
		t.Errorf("posts container: %d\n%s", resp.StatusCode, body)
	}
}

func TestNotFound(t *testing.T) {
	_, ts, pod := newTestServer(t)
	resp, _ := get(t, ts.Client(), pod.Base+"nope", nil)
	if resp.StatusCode != 404 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, pod := newTestServer(t)
	req, _ := http.NewRequest(http.MethodPost, pod.ProfileDocument(), strings.NewReader("x"))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestAccessControl(t *testing.T) {
	_, ts, pod := newTestServer(t)
	private := pod.Base + "private/s"

	// Anonymous: 401.
	resp, _ := get(t, ts.Client(), private, nil)
	if resp.StatusCode != 401 {
		t.Errorf("anonymous status = %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("missing WWW-Authenticate")
	}

	// Wrong agent: 403.
	resp, _ = get(t, ts.Client(), private, map[string]string{
		"Authorization": "Bearer " + TokenFor("https://evil.example/card#me"),
		"X-WebID":       "https://evil.example/card#me",
	})
	if resp.StatusCode != 403 {
		t.Errorf("stranger status = %d, want 403", resp.StatusCode)
	}

	// Forged token: 401.
	resp, _ = get(t, ts.Client(), private, map[string]string{
		"Authorization": "Bearer forged",
		"X-WebID":       pod.WebID(),
	})
	if resp.StatusCode != 401 {
		t.Errorf("forged token status = %d, want 401", resp.StatusCode)
	}

	// Owner: 200.
	resp, body := get(t, ts.Client(), private, map[string]string{
		"Authorization": "Bearer " + TokenFor(pod.WebID()),
		"X-WebID":       pod.WebID(),
	})
	if resp.StatusCode != 200 || !strings.Contains(body, "secret") {
		t.Errorf("owner status = %d body = %q", resp.StatusCode, body)
	}
}

func TestRequestCounting(t *testing.T) {
	ps, ts, pod := newTestServer(t)
	ps.ResetRequestCount()
	get(t, ts.Client(), pod.ProfileDocument(), nil)
	get(t, ts.Client(), pod.Base, nil)
	if n := ps.RequestCount(); n != 2 {
		t.Errorf("RequestCount = %d", n)
	}
}

func TestSaveAndLoadDir(t *testing.T) {
	dir, err := os.MkdirTemp("", "pods")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	host := "https://solidbench.invalid"
	pod := buildTestPod(host + "/pods/alice/")
	if err := SaveDir(dir, host, []*solid.Pod{pod}); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh server under a new origin.
	ps := New()
	ts := httptest.NewServer(ps)
	defer ts.Close()
	oldHost, err := ps.LoadDir(dir, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if oldHost != host {
		t.Errorf("stored host = %s", oldHost)
	}

	// The profile must be served under the new origin with rebased links.
	resp, body := get(t, ts.Client(), ts.URL+"/pods/alice/profile/card", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if strings.Contains(body, host) {
		t.Errorf("body still references old host:\n%s", body)
	}

	// ACLs survive the round trip (agents rebased too).
	resp, _ = get(t, ts.Client(), ts.URL+"/pods/alice/private/s", nil)
	if resp.StatusCode != 401 {
		t.Errorf("private doc after load: %d", resp.StatusCode)
	}
	newWebID := ts.URL + "/pods/alice/profile/card#me"
	resp, _ = get(t, ts.Client(), ts.URL+"/pods/alice/private/s", map[string]string{
		"Authorization": "Bearer " + TokenFor(newWebID),
		"X-WebID":       newWebID,
	})
	if resp.StatusCode != 200 {
		t.Errorf("owner after rebase: %d", resp.StatusCode)
	}
}

func TestRebase(t *testing.T) {
	ps := New()
	ps.AddDocument("https://old.invalid/pods/a/doc", "<https://old.invalid/pods/a/doc#x> <http://p> <http://o>.", solid.PublicAccess)
	ps.Rebase("https://old.invalid", "http://127.0.0.1:9999")
	ts := httptest.NewServer(ps)
	defer ts.Close()
	// The rebased URL key must exist.
	if ps.DocumentCount() != 1 {
		t.Fatalf("DocumentCount = %d", ps.DocumentCount())
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/pods/a/doc", nil)
	req.Host = "127.0.0.1:9999"
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "http://127.0.0.1:9999") {
		t.Errorf("rebase failed: %d %s", resp.StatusCode, body)
	}
}

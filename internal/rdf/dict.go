package rdf

import (
	"sync"
	"sync/atomic"
)

// TermID is a dictionary-encoded term: a dense integer handle for one
// distinct Term. ID 0 is reserved for the undefined (zero) term, so a zero
// TermID unambiguously means "no term". IDs are assigned in first-intern
// order, are never reused, and stay stable for the lifetime of the Dict —
// two Terms are equal if and only if their IDs from the same Dict are equal.
type TermID uint32

// NoTerm is the TermID of the undefined term.
const NoTerm TermID = 0

// IDTriple is a dictionary-encoded triple: three TermIDs from the same
// Dict. It is a 12-byte comparable value, so it hashes and compares as a
// small fixed-size key instead of three lexical strings — the representation
// the store keeps on its hot ingest and match paths.
type IDTriple struct {
	S, P, O TermID
}

// SP packs subject and predicate into one uint64 composite key, used by the
// store's (s,p)-constant index.
func (t IDTriple) SP() uint64 { return uint64(t.S)<<32 | uint64(t.P) }

// PO packs predicate and object into one uint64 composite key, used by the
// store's (p,o)-constant index.
func (t IDTriple) PO() uint64 { return uint64(t.P)<<32 | uint64(t.O) }

// PackID2 packs two TermIDs into one uint64 composite key. Join operators
// use it to key hash buckets on up to two shared variables without
// rendering any lexical form.
func PackID2(a, b TermID) uint64 { return uint64(a)<<32 | uint64(b) }

const (
	// dictShards is the number of lock stripes of the intern map. Power of
	// two; 64 stripes keep contention negligible at the engine's default
	// dereference parallelism while costing ~3 KiB of mutexes.
	dictShards = 64

	// dictChunkSize is the number of terms per decode-table chunk. Chunks
	// are append-only: once a slot is published it never moves, so readers
	// decode without taking any lock.
	dictChunkSize = 1024
)

// Dict is a concurrent term dictionary: an engine-scoped bijection between
// Terms and dense TermIDs.
//
// Interning is lock-striped: the Term→ID map is split over dictShards
// stripes, each guarded by its own RWMutex, so concurrent interning from
// many dereference workers rarely contends, and the common re-intern (hit)
// path takes only a read lock. Decoding is lock-free: the ID→Term table is
// a list of fixed-size append-only chunks published with atomic operations,
// so pattern scans and joins decode IDs with two atomic loads and an index.
//
// The dictionary is append-only and grows for the lifetime of its engine;
// it never forgets a term. That is the standard trade-off of dictionary
// encoding: bounded, shared string storage in exchange for integer
// comparisons everywhere downstream.
type Dict struct {
	shards [dictShards]dictShard

	// tableMu serializes ID allocation and decode-table appends.
	tableMu sync.Mutex
	// chunks is the atomically-published list of decode chunks.
	chunks atomic.Pointer[[]*dictChunk]
	// n is the number of published IDs; a reader that observes n >= id is
	// guaranteed (by the release/acquire pair on n) to see the fully
	// written decode slot for id.
	n atomic.Uint32
}

type dictShard struct {
	mu sync.RWMutex
	m  map[Term]TermID
}

type dictChunk [dictChunkSize]Term

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{}
	for i := range d.shards {
		d.shards[i].m = make(map[Term]TermID)
	}
	empty := make([]*dictChunk, 0)
	d.chunks.Store(&empty)
	return d
}

// shardOf selects the lock stripe for a term (FNV-1a over its components).
func shardOf(t Term) uint32 {
	h := uint32(2166136261)
	h = (h ^ uint32(t.Kind)) * 16777619
	for i := 0; i < len(t.Value); i++ {
		h = (h ^ uint32(t.Value[i])) * 16777619
	}
	for i := 0; i < len(t.Datatype); i++ {
		h = (h ^ uint32(t.Datatype[i])) * 16777619
	}
	for i := 0; i < len(t.Language); i++ {
		h = (h ^ uint32(t.Language[i])) * 16777619
	}
	return h & (dictShards - 1)
}

// Intern returns the ID of t, assigning a fresh one on first sight. The
// undefined term always interns to NoTerm. Intern is safe for concurrent
// use; equal terms receive equal IDs no matter which goroutine interned
// them first.
func (d *Dict) Intern(t Term) TermID {
	if t.Kind == TermUndef {
		return NoTerm
	}
	sh := &d.shards[shardOf(t)]
	sh.mu.RLock()
	id, ok := sh.m[t]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[t]; ok {
		return id
	}
	id = d.appendTerm(t)
	sh.m[t] = id
	return id
}

// appendTerm allocates the next ID and publishes t in the decode table.
func (d *Dict) appendTerm(t Term) TermID {
	d.tableMu.Lock()
	defer d.tableMu.Unlock()
	next := d.n.Load() // only this goroutine can advance it right now
	idx := int(next)   // 0-based slot of the new term; its ID is next+1
	chunks := *d.chunks.Load()
	if idx/dictChunkSize >= len(chunks) {
		grown := make([]*dictChunk, len(chunks)+1)
		copy(grown, chunks)
		grown[len(chunks)] = new(dictChunk)
		d.chunks.Store(&grown)
		chunks = grown
	}
	chunks[idx/dictChunkSize][idx%dictChunkSize] = t
	id := TermID(next + 1)
	d.n.Store(uint32(id)) // release: publishes the slot write above
	return id
}

// Lookup returns the ID of t without interning it. The second result
// reports whether t has ever been interned. The undefined term reports
// (NoTerm, true).
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if t.Kind == TermUndef {
		return NoTerm, true
	}
	sh := &d.shards[shardOf(t)]
	sh.mu.RLock()
	id, ok := sh.m[t]
	sh.mu.RUnlock()
	return id, ok
}

// Decode returns the term for an ID. NoTerm and out-of-range IDs decode to
// the undefined term. Decode is lock-free and safe concurrently with
// Intern.
func (d *Dict) Decode(id TermID) Term {
	if id == NoTerm || uint32(id) > d.n.Load() { // acquire: pairs with appendTerm
		return Term{}
	}
	idx := int(id) - 1
	chunks := *d.chunks.Load()
	return chunks[idx/dictChunkSize][idx%dictChunkSize]
}

// Canonical interns t and returns the dictionary's copy of it. The
// canonical term is ==-equal to t but shares the dictionary's backing
// strings, so parsers that canonicalize as they emit collapse the thousands
// of repeated IRI/datatype strings of a document set down to one allocation
// each.
func (d *Dict) Canonical(t Term) Term {
	id := d.Intern(t)
	if id == NoTerm {
		return Term{}
	}
	return d.Decode(id)
}

// InternTriple interns all three positions of a ground triple.
func (d *Dict) InternTriple(t Triple) IDTriple {
	return IDTriple{S: d.Intern(t.S), P: d.Intern(t.P), O: d.Intern(t.O)}
}

// LookupTriple returns the IDTriple of t if every position has been
// interned; ok is false otherwise (in which case t cannot be present in any
// structure keyed by this dictionary).
func (d *Dict) LookupTriple(t Triple) (IDTriple, bool) {
	s, ok1 := d.Lookup(t.S)
	p, ok2 := d.Lookup(t.P)
	o, ok3 := d.Lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return IDTriple{}, false
	}
	return IDTriple{S: s, P: p, O: o}, true
}

// DecodeTriple decodes all three positions of an IDTriple.
func (d *Dict) DecodeTriple(t IDTriple) Triple {
	return Triple{S: d.Decode(t.S), P: d.Decode(t.P), O: d.Decode(t.O)}
}

// Size returns the number of distinct terms interned so far.
func (d *Dict) Size() int { return int(d.n.Load()) }

// Package sparql implements a SPARQL 1.1 tokenizer and recursive-descent
// parser producing the abstract syntax tree consumed by the algebra
// translator. The supported fragment covers everything the Solid/SolidBench
// workloads need: SELECT/ASK/CONSTRUCT forms, group graph patterns with
// OPTIONAL, UNION, MINUS, FILTER, BIND, VALUES and subqueries, property
// paths, expressions with the common builtin functions, aggregates, and all
// solution modifiers.
package sparql

import (
	"fmt"
	"strings"
)

// tokenKind identifies lexical token classes.
type tokenKind uint8

const (
	tokEOF    tokenKind = iota
	tokIRI              // <http://...>
	tokPName            // prefix:local or prefix: or :local
	tokVar              // ?name or $name
	tokString           // "..." or '...' with escapes applied
	tokInteger
	tokDecimal
	tokDouble
	tokBlank   // _:label
	tokKeyword // bare word: SELECT, WHERE, a, true, ...
	tokLangTag // @en
	tokPunct   // punctuation / operators
)

// token is one lexical token with its position for error reporting.
type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer scans SPARQL source into tokens.
type lexer struct {
	in   string
	pos  int
	line int
}

func newLexer(in string) *lexer { return &lexer{in: in, line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) eof() bool { return l.pos >= len(l.in) }

func (l *lexer) peek() byte {
	if l.eof() {
		return 0
	}
	return l.in[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.in) {
		return 0
	}
	return l.in[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.in[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
	}
	return c
}

func (l *lexer) skipWS() {
	for !l.eof() {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for !l.eof() && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// isNameStart reports whether c can start a bare name (keyword/prefix).
func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

// isNameChar reports whether c can continue a bare name.
func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '-'
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	l.skipWS()
	line := l.line
	if l.eof() {
		return token{kind: tokEOF, line: line}, nil
	}
	c := l.peek()
	switch {
	case c == '<':
		// IRIREF if a '>' appears before whitespace; otherwise an operator.
		if iri, ok := l.tryIRIRef(); ok {
			return token{kind: tokIRI, text: iri, line: line}, nil
		}
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{kind: tokPunct, text: "<=", line: line}, nil
		}
		return token{kind: tokPunct, text: "<", line: line}, nil

	case c == '?' || c == '$':
		l.advance()
		start := l.pos
		for !l.eof() && (isNameChar(l.peek())) {
			l.advance()
		}
		if l.pos == start {
			// A bare '?' is the zero-or-one path operator.
			return token{kind: tokPunct, text: "?", line: line}, nil
		}
		return token{kind: tokVar, text: l.in[start:l.pos], line: line}, nil

	case c == '"' || c == '\'':
		s, err := l.scanString()
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, line: line}, nil

	case c == '_' && l.peekAt(1) == ':':
		l.advance()
		l.advance()
		start := l.pos
		for !l.eof() && (isNameChar(l.peek())) {
			l.advance()
		}
		return token{kind: tokBlank, text: l.in[start:l.pos], line: line}, nil

	case c == '@':
		l.advance()
		start := l.pos
		for !l.eof() {
			c := l.peek()
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' {
				l.advance()
				continue
			}
			break
		}
		if l.pos == start {
			return token{}, l.errf("empty language tag")
		}
		return token{kind: tokLangTag, text: strings.ToLower(l.in[start:l.pos]), line: line}, nil

	case c >= '0' && c <= '9' || (c == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9'):
		return l.scanNumber(line)

	case isNameStart(c):
		return l.scanNameOrPName(line)

	case c == ':':
		// PName with empty prefix.
		return l.scanLocalAfterColon("", line)

	default:
		return l.scanPunct(line)
	}
}

// tryIRIRef attempts to scan <...> as an IRI reference. It succeeds only if
// a closing '>' occurs before any whitespace, so that comparison operators
// in expressions are not misread.
func (l *lexer) tryIRIRef() (string, bool) {
	i := l.pos + 1
	for i < len(l.in) {
		c := l.in[i]
		if c == '>' {
			iri := l.in[l.pos+1 : i]
			l.pos = i + 1
			return iri, true
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<' || c == '"' {
			return "", false
		}
		i++
	}
	return "", false
}

// scanString scans short and long quoted strings with escapes.
func (l *lexer) scanString() (string, error) {
	quote := l.advance()
	long := false
	if l.peek() == quote && l.peekAt(1) == quote {
		l.advance()
		l.advance()
		long = true
	} else if l.peek() == quote {
		l.advance()
		return "", nil
	}
	var b strings.Builder
	for {
		if l.eof() {
			return "", l.errf("unterminated string")
		}
		c := l.advance()
		if c == quote {
			if !long {
				return b.String(), nil
			}
			if l.peek() == quote && l.peekAt(1) == quote {
				l.advance()
				l.advance()
				return b.String(), nil
			}
			b.WriteByte(c)
			continue
		}
		if c == '\\' {
			if l.eof() {
				return "", l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"', '\'', '\\':
				b.WriteByte(e)
			case 'u', 'U':
				n := 4
				if e == 'U' {
					n = 8
				}
				if l.pos+n > len(l.in) {
					return "", l.errf("truncated \\%c escape", e)
				}
				var v uint32
				for i := 0; i < n; i++ {
					v <<= 4
					h := l.advance()
					switch {
					case h >= '0' && h <= '9':
						v |= uint32(h - '0')
					case h >= 'a' && h <= 'f':
						v |= uint32(h-'a') + 10
					case h >= 'A' && h <= 'F':
						v |= uint32(h-'A') + 10
					default:
						return "", l.errf("invalid hex digit %q", h)
					}
				}
				b.WriteRune(rune(v))
			default:
				return "", l.errf("invalid escape \\%c", e)
			}
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return "", l.errf("newline in string")
		}
		b.WriteByte(c)
	}
}

// scanNumber scans integer/decimal/double numerals.
func (l *lexer) scanNumber(line int) (token, error) {
	start := l.pos
	for !l.eof() && l.peek() >= '0' && l.peek() <= '9' {
		l.advance()
	}
	kind := tokInteger
	if l.peek() == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
		kind = tokDecimal
		l.advance()
		for !l.eof() && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		kind = tokDouble
		l.advance()
		if c := l.peek(); c == '+' || c == '-' {
			l.advance()
		}
		for !l.eof() && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
	}
	return token{kind: kind, text: l.in[start:l.pos], line: line}, nil
}

// scanNameOrPName scans a bare name, which is either a keyword (SELECT,
// FILTER, true, a, ...) or the prefix part of a prefixed name.
func (l *lexer) scanNameOrPName(line int) (token, error) {
	start := l.pos
	for !l.eof() && (isNameChar(l.peek()) || l.peek() == '.') {
		// A dot ends the name unless followed by a name char (allowed in
		// the middle of prefixed-name locals, not prefixes; be permissive).
		if l.peek() == '.' {
			if !isNameChar(l.peekAt(1)) {
				break
			}
		}
		l.advance()
	}
	word := l.in[start:l.pos]
	if l.peek() == ':' {
		return l.scanLocalAfterColon(word, line)
	}
	return token{kind: tokKeyword, text: word, line: line}, nil
}

// scanLocalAfterColon scans the ":local" part of a prefixed name; prefix is
// the already-scanned prefix label (possibly empty).
func (l *lexer) scanLocalAfterColon(prefix string, line int) (token, error) {
	l.advance() // ':'
	var local strings.Builder
	for !l.eof() {
		c := l.peek()
		if c == '\\' {
			l.advance()
			if l.eof() {
				return token{}, l.errf("unterminated local escape")
			}
			local.WriteByte(l.advance())
			continue
		}
		if isNameChar(c) || c == '%' {
			local.WriteByte(l.advance())
			continue
		}
		if c == '.' && isNameChar(l.peekAt(1)) {
			local.WriteByte(l.advance())
			continue
		}
		break
	}
	return token{kind: tokPName, text: prefix + ":" + local.String(), line: line}, nil
}

// twoBytePuncts lists the two-character operators.
var twoBytePuncts = []string{"^^", "||", "&&", "!=", ">=", "<="}

// scanPunct scans punctuation and operators.
func (l *lexer) scanPunct(line int) (token, error) {
	for _, p := range twoBytePuncts {
		if strings.HasPrefix(l.in[l.pos:], p) {
			l.advance()
			l.advance()
			return token{kind: tokPunct, text: p, line: line}, nil
		}
	}
	c := l.advance()
	switch c {
	case '{', '}', '(', ')', '[', ']', '.', ';', ',', '*', '+', '/', '|', '^', '!', '=', '>', '-':
		return token{kind: tokPunct, text: string(c), line: line}, nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

// lexAll scans the whole input, used by the parser.
func lexAll(in string) ([]token, error) {
	l := newLexer(in)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

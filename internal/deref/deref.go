// Package deref implements the dereferencer of the traversal engine: it
// fetches a document URL over HTTP with RDF content negotiation, parses the
// response into triples, and reports request metrics. Authentication is
// supported by attaching the querying agent's WebID as a bearer credential,
// which the simulated Solid pod servers verify against per-document access
// control lists — reproducing the paper's "execute queries on behalf of the
// logged-in user" behaviour with a simulated Solid-OIDC flow.
//
// Fetches on the open Web fail transiently; when a RetryPolicy is set, the
// dereferencer retries transient failures (transport errors, 429/5xx,
// stalled responses) with capped exponential backoff and honors Retry-After
// hints, while terminal failures (other 4xx, unparseable or oversized
// documents) surface immediately. Every attempt is recorded in the metrics
// waterfall, so degraded networks stay observable.
package deref

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ltqp/internal/metrics"
	"ltqp/internal/obs"
	"ltqp/internal/rdf"
	"ltqp/internal/resource"
	"ltqp/internal/turtle"
)

// AcceptHeader is the RDF content negotiation header sent with every
// dereference.
const AcceptHeader = "text/turtle;q=1.0, application/n-triples;q=0.9, */*;q=0.1"

// maxBodyBytes caps response bodies to guard against hostile documents. A
// body over the cap is rejected, never silently truncated. (A variable so
// tests can exercise the overflow path without 64 MiB bodies.)
var maxBodyBytes int64 = 64 << 20

// ErrBodyLimit marks a dereference rejected because the response body
// exceeded the byte cap — an oversized-document defense trip, detectable
// with errors.Is through the returned *Error.
var ErrBodyLimit = errors.New("deref: body exceeds size limit")

// ErrSlowBody marks a dereference aborted because the response body did not
// arrive in full within BodyTimeout — the slow-loris defense trip,
// detectable with errors.Is through the returned *Error.
var ErrSlowBody = errors.New("deref: body transfer too slow")

// Credentials identifies the agent on whose behalf the engine queries.
type Credentials struct {
	// WebID is the agent's WebID IRI.
	WebID string
	// Token is the bearer token proving control of the WebID. The
	// simulated identity provider issues Token == WebID signatures; real
	// deployments would carry a DPoP-bound access token here.
	Token string
}

// Result is a successful dereference.
type Result struct {
	// URL is the requested document URL; FinalURL the post-redirect URL.
	URL      string
	FinalURL string
	// Triples are the parsed statements, with relative IRIs resolved
	// against the final URL and blank nodes scoped to this document.
	Triples []rdf.Triple
	Status  int
	Bytes   int64
	// Validators are the HTTP cache validators the server attached to a
	// 200 response; a shared document cache stores them to revalidate the
	// entry with a conditional request later.
	Validators Validators
	// NotModified is set when a conditional fetch was answered with
	// 304 Not Modified: the caller's cached copy is still current and
	// Triples is empty.
	NotModified bool
}

// Validators are the HTTP cache validators of a document: the strong entity
// tag and Last-Modified date a server reported, replayed on revalidation as
// If-None-Match / If-Modified-Since.
type Validators struct {
	ETag         string
	LastModified string
}

// Zero reports whether no validator is present (a conditional request is
// impossible; revalidation degrades to a full refetch).
func (v Validators) Zero() bool { return v.ETag == "" && v.LastModified == "" }

// FetchFunc performs one dereference (with retries) on behalf of a shared
// cache, sending the given validators as a conditional request when present.
// It returns a NotModified result when the server answered 304.
type FetchFunc func(ctx context.Context, vals Validators) (*Result, error)

// SharedCache is a cross-engine shared document cache layered under the
// dereferencer (implemented by internal/serve). Dereference serves the key
// from cache when fresh, revalidates stale entries with a conditional fetch,
// and deduplicates concurrent fetches of the same key so N concurrent
// queries issue one upstream request. hit reports whether this caller was
// served without a network request of its own (fresh hit or deduplicated
// join of another caller's in-flight fetch).
type SharedCache interface {
	Dereference(ctx context.Context, key, url string, fetch FetchFunc) (res *Result, hit bool, err error)
}

// Dereferencer fetches and parses RDF documents.
type Dereferencer struct {
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Auth, when non-nil, is attached to every request.
	Auth *Credentials
	// Recorder, when non-nil, receives request metrics (one event per
	// attempt, so retries are visible in the waterfall).
	Recorder *metrics.Recorder
	// Cache, when non-nil, serves repeated dereferences of a document
	// without touching the network (Fig. 4's "(disk cache)" behaviour).
	Cache *Cache
	// Retry, when non-nil, retries transient failures with backoff. Nil
	// means a single attempt with no per-attempt timeout.
	Retry *RetryPolicy
	// Obs, when non-nil, receives process-level metrics (documents
	// fetched, cache hits/misses, dereference latency) aggregated across
	// all queries of the owning engine.
	Obs *obs.Metrics
	// Events, when non-nil, publishes retry_scheduled events to the
	// owning query's event stream whenever a transient failure is about
	// to be retried after a backoff delay.
	Events *obs.Emitter
	// UserAgent is sent as the User-Agent header.
	UserAgent string
	// Dict, when non-nil, is the engine term dictionary: parsed documents
	// are canonicalized into it, so cached documents hold interned terms
	// and store ingest of a cache hit is pure dictionary map hits.
	Dict *rdf.Dict
	// Shared, when non-nil, layers a cross-engine shared document cache
	// under the dereferencer (see internal/serve): fresh entries are
	// served without touching the network, stale entries revalidate with
	// conditional requests, and concurrent dereferences of the same key
	// collapse into one upstream fetch. Takes precedence over Cache.
	Shared SharedCache
	// MaxBodyBytes, when positive, overrides the 64 MiB default response
	// body cap: a larger body fails with an error wrapping ErrBodyLimit.
	MaxBodyBytes int64
	// BodyTimeout, when positive, bounds how long one response body may
	// take to arrive in full; a slower transfer (a slow-loris pod) is
	// aborted with an error wrapping ErrSlowBody. The timer starts once
	// response headers arrive.
	BodyTimeout time.Duration
	// Ledger, when non-nil, is charged for every successful dereference:
	// resource.Deref for documents read off the network (body bytes, a
	// proxy for the retained parse), resource.Serve for documents pinned
	// from a cache on this query's behalf. The traversal worker releases
	// the charge once the document is ingested and its links extracted.
	Ledger *resource.Ledger

	// docCounter scopes blank node labels per dereferenced document.
	docCounter atomic.Int64
}

// BodyLimit returns the effective response-body byte cap.
func (d *Dereferencer) BodyLimit() int64 {
	if d.MaxBodyBytes > 0 {
		return d.MaxBodyBytes
	}
	return maxBodyBytes
}

// Dereference fetches one document and parses it, retrying transient
// failures per the Retry policy. Failures return an error (a *Error for
// HTTP/transport/parse failures); the metrics recorder captures one event
// per attempt either way.
func (d *Dereferencer) Dereference(ctx context.Context, url, parent, reason string) (*Result, error) {
	res, _, err := d.DereferenceTracked(ctx, url, parent, reason)
	return res, err
}

// DereferenceTracked is Dereference plus ledger accounting: a successful
// dereference charges the attached resource ledger once for res.Bytes and
// returns the category charged — resource.Deref for documents read off the
// network, resource.Serve for documents pinned from a cache (engine-local or
// shared) on this query's behalf. The caller must Release the same category
// and amount once the document has been ingested and its links extracted.
// The category is returned rather than stored on Result because Result
// pointers are shared across queries by the shared-cache singleflight.
func (d *Dereferencer) DereferenceTracked(ctx context.Context, url, parent, reason string) (*Result, resource.Category, error) {
	if d.Shared != nil {
		res, hit, err := d.Shared.Dereference(ctx, cacheKey(url, d.Auth), url,
			func(fctx context.Context, vals Validators) (*Result, error) {
				return d.fetchWithRetry(fctx, url, parent, reason, vals)
			})
		if err != nil {
			return nil, 0, err
		}
		cat := resource.Deref
		if hit {
			d.recordCacheHit(ctx, url, parent, reason, res)
			cat = resource.Serve
		}
		d.charge(cat, res)
		return res, cat, nil
	}

	if d.Cache != nil {
		if entry, ok := d.Cache.get(cacheKey(url, d.Auth)); ok {
			res := &Result{URL: url, FinalURL: entry.finalURL, Triples: entry.triples,
				Status: http.StatusOK, Bytes: entry.bytes}
			d.recordCacheHit(ctx, url, parent, reason, res)
			d.charge(resource.Serve, res)
			return res, resource.Serve, nil
		}
		obs.On(d.Obs).CacheMisses.Inc()
	}

	res, err := d.fetchWithRetry(ctx, url, parent, reason, Validators{})
	if err != nil {
		return nil, 0, err
	}
	if d.Cache != nil {
		d.Cache.put(&cacheEntry{
			key:      cacheKey(url, d.Auth),
			finalURL: res.FinalURL,
			triples:  res.Triples,
			bytes:    res.Bytes,
		})
	}
	d.charge(resource.Deref, res)
	return res, resource.Deref, nil
}

// charge bills the ledger for a successfully dereferenced document. 304
// revalidations carry no new payload and are never charged.
func (d *Dereferencer) charge(cat resource.Category, res *Result) {
	if res.NotModified {
		return
	}
	d.Ledger.Charge(cat, res.Bytes)
}

// recordCacheHit records a dereference served from a cache (engine-local or
// shared) in the per-query waterfall, span stream and process metrics.
func (d *Dereferencer) recordCacheHit(ctx context.Context, url, parent, reason string, res *Result) {
	start := time.Now()
	ev := metrics.Request{URL: url, Parent: parent, Reason: reason,
		Start: start, Status: http.StatusOK, Bytes: res.Bytes,
		Triples: len(res.Triples), Cached: true, Attempt: 1}
	ev.End = ev.Start
	if d.Recorder != nil {
		d.Recorder.Record(ev)
	}
	_, sp := obs.StartSpan(ctx, "deref",
		obs.Str("url", url), obs.Bool("cached", true),
		obs.Int("triples", len(res.Triples)))
	sp.End()
	m := obs.On(d.Obs)
	m.CacheHits.Inc()
	m.DerefDuration.ObserveExemplar(time.Since(start).Seconds(), sp.TraceIDString())
}

// fetchWithRetry performs the network dereference with the configured retry
// policy, sending vals as a conditional request when present.
func (d *Dereferencer) fetchWithRetry(ctx context.Context, url, parent, reason string, vals Validators) (*Result, error) {
	maxAttempts := d.Retry.maxAttempts()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res, err := d.fetchOnce(ctx, url, parent, reason, attempt, vals)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if attempt == maxAttempts || !IsRetryable(err) || ctx.Err() != nil {
			break
		}
		delay := d.Retry.Backoff(url, attempt)
		var de *Error
		if errors.As(err, &de) && de.RetryAfter > 0 {
			if de.RetryAfter > d.Retry.maxRetryAfter() {
				// The server demands a longer pause than we are
				// willing to wait: give up on this document.
				break
			}
			delay = de.RetryAfter
		}
		if d.Events.Active() {
			d.Events.Emit(obs.Event{Kind: obs.EventRetryScheduled, URL: url,
				Attempt: attempt, DelayUS: delay.Microseconds(), Err: err.Error()})
		}
		if err := d.Retry.doSleep(ctx, delay); err != nil {
			break
		}
	}
	return nil, lastErr
}

// fetchOnce performs one fetch+parse attempt and records one metrics event.
// When vals carries validators the request is conditional and a 304 answer
// yields a NotModified result instead of an error.
func (d *Dereferencer) fetchOnce(ctx context.Context, url, parent, reason string, attempt int, vals Validators) (*Result, error) {
	client := d.Client
	if client == nil {
		client = http.DefaultClient
	}
	ev := metrics.Request{URL: url, Parent: parent, Reason: reason, Start: time.Now(), Attempt: attempt}
	_, span := obs.StartSpan(ctx, "deref", obs.Str("url", url), obs.Int("attempt", attempt))
	m := obs.On(d.Obs)
	if attempt > 1 {
		m.Retries.Inc()
	}
	record := func() {
		ev.End = time.Now()
		if d.Recorder != nil {
			d.Recorder.Record(ev)
		}
		if ev.Status != 0 {
			m.DocumentsByStatus.With(strconv.Itoa(ev.Status)).Inc()
		}
		if ev.Server > 0 {
			span.SetAttr(obs.Int64("server_us", ev.Server.Microseconds()))
		}
		switch {
		case ev.Err != "":
			span.SetAttr(obs.Str("error", ev.Err))
			m.FetchFailures.Inc()
		case ev.Status == http.StatusNotModified:
			// Revalidation confirmed the cached copy: no new document,
			// bytes or triples — only the round trip itself.
			span.SetAttr(obs.Int("status", ev.Status))
			m.DerefDuration.ObserveExemplar(ev.End.Sub(ev.Start).Seconds(), span.TraceIDString())
		default:
			span.SetAttr(obs.Int("status", ev.Status), obs.Int64("bytes", ev.Bytes), obs.Int("triples", ev.Triples))
			m.DocumentsFetched.Inc()
			m.BytesFetched.Add(ev.Bytes)
			m.TriplesParsed.Add(int64(ev.Triples))
			m.DerefDuration.ObserveExemplar(ev.End.Sub(ev.Start).Seconds(), span.TraceIDString())
		}
		span.End()
	}

	attemptCtx := ctx
	if t := d.Retry.attemptTimeout(); t > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	// The body timer needs its own cancel to abort an in-flight read of a
	// trickling body without waiting out the attempt timeout.
	bodyCancel := context.CancelFunc(func() {})
	if d.BodyTimeout > 0 {
		attemptCtx, bodyCancel = context.WithCancel(attemptCtx)
		defer bodyCancel()
	}

	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, url, nil)
	if err != nil {
		ev.Err = err.Error()
		record()
		return nil, fmt.Errorf("deref: %w", err)
	}
	req.Header.Set("Accept", AcceptHeader)
	// Propagate the W3C trace context: the server can join its own span to
	// this attempt's. Free when tracing is off (nil span renders "").
	if tp := span.Traceparent(); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	if d.UserAgent != "" {
		req.Header.Set("User-Agent", d.UserAgent)
	}
	if d.Auth != nil {
		req.Header.Set("Authorization", "Bearer "+d.Auth.Token)
		req.Header.Set("X-WebID", d.Auth.WebID)
	}
	if vals.ETag != "" {
		req.Header.Set("If-None-Match", vals.ETag)
	}
	if vals.LastModified != "" {
		req.Header.Set("If-Modified-Since", vals.LastModified)
	}

	resp, err := client.Do(req)
	if err != nil {
		ev.Err = err.Error()
		record()
		return nil, &Error{URL: url, Retryable: classifyTransport(ctx, err), Err: err}
	}
	defer resp.Body.Close()
	ev.Status = resp.StatusCode
	// Absorb the server-reported share of this fetch (handler time plus
	// configured/injected delays), splitting wall time into server cost
	// and network cost for the critical-path analysis.
	if st := resp.Header.Values(obs.ServerTimingHeader); len(st) > 0 {
		ev.Server = obs.ParseServerTiming(st)
	}

	// Headers are in; from here the body must arrive in full within
	// BodyTimeout or the read is aborted as a slow-loris transfer.
	var slowTripped atomic.Bool
	if d.BodyTimeout > 0 {
		timer := time.AfterFunc(d.BodyTimeout, func() {
			slowTripped.Store(true)
			bodyCancel()
		})
		defer timer.Stop()
	}

	// Read one byte past the cap so truncation is detected, not silent.
	limit := d.BodyLimit()
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		if slowTripped.Load() {
			ev.Err = ErrSlowBody.Error()
			record()
			return nil, &Error{URL: url, Status: resp.StatusCode,
				Err: fmt.Errorf("body not complete within %v: %w", d.BodyTimeout, ErrSlowBody)}
		}
		ev.Err = err.Error()
		record()
		return nil, &Error{URL: url, Status: resp.StatusCode,
			Retryable: classifyTransport(ctx, err),
			Err:       fmt.Errorf("reading body: %w", err)}
	}
	if int64(len(body)) > limit {
		ev.Err = "body exceeds size limit"
		record()
		return nil, &Error{URL: url, Status: resp.StatusCode,
			Err: fmt.Errorf("body exceeds %d-byte limit: %w", limit, ErrBodyLimit)}
	}
	ev.Bytes = int64(len(body))

	if resp.StatusCode == http.StatusNotModified && !vals.Zero() {
		// The cached copy is current; the caller (a shared cache) keeps
		// serving its stored parse. Recorded as a 304 in the waterfall,
		// not as a fetched document.
		record()
		return &Result{URL: url, FinalURL: url, Status: resp.StatusCode,
			NotModified: true, Validators: vals}, nil
	}

	if resp.StatusCode != http.StatusOK {
		ev.Err = fmt.Sprintf("status %d", resp.StatusCode)
		record()
		derr := &Error{URL: url, Status: resp.StatusCode, Retryable: RetryableStatus(resp.StatusCode)}
		if derr.Retryable {
			if ra, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				derr.RetryAfter = ra
			}
		}
		return nil, derr
	}

	finalURL := url
	if resp.Request != nil && resp.Request.URL != nil {
		finalURL = resp.Request.URL.String()
	}

	ctype := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ctype, ';'); i >= 0 {
		ctype = ctype[:i]
	}
	ctype = strings.TrimSpace(strings.ToLower(ctype))
	switch ctype {
	case "", "text/turtle", "application/n-triples", "text/n3", "application/trig":
		// Parse below; N-Triples is a Turtle subset.
	default:
		ev.Err = "unsupported content type " + ctype
		record()
		return nil, &Error{URL: url, Status: resp.StatusCode,
			Err: fmt.Errorf("unsupported content type %q", ctype)}
	}

	triples, err := turtle.Parse(string(body), turtle.Options{
		Base:        finalURL,
		BlankPrefix: fmt.Sprintf("d%d.", d.docCounter.Add(1)),
		Dict:        d.Dict,
	})
	if err != nil {
		ev.Err = err.Error()
		record()
		return nil, &Error{URL: url, Status: resp.StatusCode, Err: err}
	}
	ev.Triples = len(triples)
	record()
	return &Result{URL: url, FinalURL: finalURL, Triples: triples, Status: resp.StatusCode, Bytes: ev.Bytes,
		Validators: Validators{ETag: resp.Header.Get("ETag"), LastModified: resp.Header.Get("Last-Modified")}}, nil
}

package sparql

import (
	"ltqp/internal/rdf"
)

// parseTriplesBlock parses consecutive triples-same-subject groups until a
// token that cannot start a subject is reached. Dots between groups are
// consumed; the final dot (if any) is left for the caller of the enclosing
// group when absent.
func (p *qparser) parseTriplesBlock() ([]TriplePattern, error) {
	var out []TriplePattern
	for {
		if !p.canStartSubject() {
			return out, nil
		}
		tps, err := p.parseTriplesSameSubject()
		if err != nil {
			return nil, err
		}
		out = append(out, tps...)
		if p.acceptPunct(".") {
			continue
		}
		return out, nil
	}
}

// canStartSubject reports whether the current token can begin a subject.
func (p *qparser) canStartSubject() bool {
	t := p.cur()
	switch t.kind {
	case tokVar, tokIRI, tokPName, tokBlank, tokString, tokInteger, tokDecimal, tokDouble:
		return true
	case tokPunct:
		return t.text == "[" || t.text == "("
	case tokKeyword:
		// true/false literals as subjects are illegal, so no keywords.
		return false
	}
	return false
}

// parseTriplesSameSubject parses `subject propertyListNotEmpty`.
func (p *qparser) parseTriplesSameSubject() ([]TriplePattern, error) {
	var out []TriplePattern
	var subject rdf.Term
	switch {
	case p.isPunct("["):
		node, tps, err := p.parseBlankNodePropertyListPath()
		if err != nil {
			return nil, err
		}
		out = append(out, tps...)
		subject = node
		// A bare [...] with no following property list is complete.
		if !p.canStartVerb() {
			return out, nil
		}
	case p.isPunct("("):
		node, tps, err := p.parseCollectionPath()
		if err != nil {
			return nil, err
		}
		out = append(out, tps...)
		subject = node
	default:
		s, err := p.parseVarOrTerm()
		if err != nil {
			return nil, err
		}
		subject = s
	}
	tps, err := p.parsePropertyListPath(subject)
	if err != nil {
		return nil, err
	}
	return append(out, tps...), nil
}

// canStartVerb reports whether the current token can begin a verb/path.
func (p *qparser) canStartVerb() bool {
	t := p.cur()
	switch t.kind {
	case tokVar, tokIRI, tokPName:
		return true
	case tokKeyword:
		return t.text == "a"
	case tokPunct:
		return t.text == "^" || t.text == "(" || t.text == "!"
	}
	return false
}

// parseVarOrTerm parses a variable, IRI, literal, or blank node.
func (p *qparser) parseVarOrTerm() (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return rdf.NewVar(t.text), nil
	case tokBlank:
		p.advance()
		// Blank nodes in query patterns are existential variables scoped to
		// the query; model them as blank terms which the algebra converts.
		return rdf.NewBlank("q." + t.text), nil
	}
	return p.parseGraphTerm()
}

// parsePropertyListPath parses `verb objectList (';' (verb objectList)?)*`.
func (p *qparser) parsePropertyListPath(subject rdf.Term) ([]TriplePattern, error) {
	var out []TriplePattern
	for {
		var path Path
		var err error
		if p.cur().kind == tokVar {
			// Variable predicate.
			path = PathIRI{IRI: "?" + p.cur().text}
			p.advance()
		} else {
			path, err = p.parsePath()
			if err != nil {
				return nil, err
			}
		}
		// Object list.
		for {
			obj, tps, err := p.parseObjectPath()
			if err != nil {
				return nil, err
			}
			out = append(out, tps...)
			out = append(out, makeTriplePattern(subject, path, obj))
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(";") {
			return out, nil
		}
		// Trailing semicolons.
		for p.acceptPunct(";") {
		}
		if !p.canStartVerb() && p.cur().kind != tokVar {
			return out, nil
		}
	}
}

// makeTriplePattern builds a TriplePattern, converting the variable-predicate
// marker back into a variable term path.
func makeTriplePattern(s rdf.Term, path Path, o rdf.Term) TriplePattern {
	if pi, ok := path.(PathIRI); ok && len(pi.IRI) > 0 && pi.IRI[0] == '?' {
		return TriplePattern{S: s, Path: PathVar{Name: pi.IRI[1:]}, O: o}
	}
	return TriplePattern{S: s, Path: path, O: o}
}

// PathVar is a variable in predicate position (not a SPARQL path per se,
// but a pattern with a variable predicate).
type PathVar struct{ Name string }

func (PathVar) isPath() {}

// parseObjectPath parses one object, which may be a nested blank node
// property list or collection that contributes extra triples.
func (p *qparser) parseObjectPath() (rdf.Term, []TriplePattern, error) {
	switch {
	case p.isPunct("["):
		return p.toObject(p.parseBlankNodePropertyListPath())
	case p.isPunct("("):
		return p.toObject(p.parseCollectionPath())
	default:
		t, err := p.parseVarOrTerm()
		return t, nil, err
	}
}

func (p *qparser) toObject(node rdf.Term, tps []TriplePattern, err error) (rdf.Term, []TriplePattern, error) {
	return node, tps, err
}

// parseBlankNodePropertyListPath parses `[ propertyList ]` and returns the
// fresh node plus its triples.
func (p *qparser) parseBlankNodePropertyListPath() (rdf.Term, []TriplePattern, error) {
	p.advance() // '['
	node := p.freshBlank()
	if p.acceptPunct("]") {
		return node, nil, nil
	}
	tps, err := p.parsePropertyListPath(node)
	if err != nil {
		return rdf.Term{}, nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return rdf.Term{}, nil, err
	}
	return node, tps, nil
}

// parseCollectionPath parses `( object* )` into rdf:List triples.
func (p *qparser) parseCollectionPath() (rdf.Term, []TriplePattern, error) {
	p.advance() // '('
	var items []rdf.Term
	var out []TriplePattern
	for !p.isPunct(")") {
		if p.cur().kind == tokEOF {
			return rdf.Term{}, nil, p.errf("unterminated collection")
		}
		obj, tps, err := p.parseObjectPath()
		if err != nil {
			return rdf.Term{}, nil, err
		}
		out = append(out, tps...)
		items = append(items, obj)
	}
	p.advance() // ')'
	if len(items) == 0 {
		return rdf.NewIRI(rdf.RDFNil), out, nil
	}
	head := p.freshBlank()
	cur := head
	first := PathIRI{IRI: rdf.RDFFirst}
	rest := PathIRI{IRI: rdf.RDFRest}
	for i, item := range items {
		out = append(out, TriplePattern{S: cur, Path: first, O: item})
		if i == len(items)-1 {
			out = append(out, TriplePattern{S: cur, Path: rest, O: rdf.NewIRI(rdf.RDFNil)})
		} else {
			next := p.freshBlank()
			out = append(out, TriplePattern{S: cur, Path: rest, O: next})
			cur = next
		}
	}
	return head, out, nil
}

// parsePath parses a SPARQL 1.1 property path expression.
func (p *qparser) parsePath() (Path, error) {
	return p.parsePathAlternative()
}

func (p *qparser) parsePathAlternative() (Path, error) {
	first, err := p.parsePathSequence()
	if err != nil {
		return nil, err
	}
	if !p.isPunct("|") {
		return first, nil
	}
	alt := PathAlternative{Parts: []Path{first}}
	for p.acceptPunct("|") {
		next, err := p.parsePathSequence()
		if err != nil {
			return nil, err
		}
		alt.Parts = append(alt.Parts, next)
	}
	return alt, nil
}

func (p *qparser) parsePathSequence() (Path, error) {
	first, err := p.parsePathEltOrInverse()
	if err != nil {
		return nil, err
	}
	if !p.isPunct("/") {
		return first, nil
	}
	seq := PathSequence{Parts: []Path{first}}
	for p.acceptPunct("/") {
		next, err := p.parsePathEltOrInverse()
		if err != nil {
			return nil, err
		}
		seq.Parts = append(seq.Parts, next)
	}
	return seq, nil
}

func (p *qparser) parsePathEltOrInverse() (Path, error) {
	if p.acceptPunct("^") {
		inner, err := p.parsePathElt()
		if err != nil {
			return nil, err
		}
		return PathInverse{Path: inner}, nil
	}
	return p.parsePathElt()
}

func (p *qparser) parsePathElt() (Path, error) {
	prim, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptPunct("*"):
		return PathZeroOrMore{Path: prim}, nil
	case p.acceptPunct("+"):
		return PathOneOrMore{Path: prim}, nil
	case p.acceptPunct("?"):
		return PathZeroOrOne{Path: prim}, nil
	}
	return prim, nil
}

func (p *qparser) parsePathPrimary() (Path, error) {
	t := p.cur()
	switch {
	case t.kind == tokIRI:
		p.advance()
		return PathIRI{IRI: rdf.ResolveIRI(p.base, t.text)}, nil
	case t.kind == tokPName:
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		p.advance()
		return PathIRI{IRI: iri}, nil
	case t.kind == tokKeyword && t.text == "a":
		p.advance()
		return PathIRI{IRI: rdf.RDFType}, nil
	case p.isPunct("("):
		p.advance()
		inner, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.isPunct("!"):
		p.advance()
		return p.parseNegatedPropertySet()
	}
	return nil, p.errf("expected property path, got %s", t)
}

// parseNegatedPropertySet parses `!iri` or `!(iri1|^iri2|...)`.
func (p *qparser) parseNegatedPropertySet() (Path, error) {
	neg := PathNegated{}
	addOne := func() error {
		inverse := p.acceptPunct("^")
		t := p.cur()
		var iri string
		switch {
		case t.kind == tokIRI:
			iri = rdf.ResolveIRI(p.base, t.text)
			p.advance()
		case t.kind == tokPName:
			var err error
			iri, err = p.expandPName(t.text)
			if err != nil {
				return err
			}
			p.advance()
		case t.kind == tokKeyword && t.text == "a":
			iri = rdf.RDFType
			p.advance()
		default:
			return p.errf("expected IRI in negated property set, got %s", t)
		}
		if inverse {
			neg.Inverse = append(neg.Inverse, iri)
		} else {
			neg.Forward = append(neg.Forward, iri)
		}
		return nil
	}
	if p.acceptPunct("(") {
		for {
			if err := addOne(); err != nil {
				return nil, err
			}
			if p.acceptPunct("|") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return neg, nil
	}
	if err := addOne(); err != nil {
		return nil, err
	}
	return neg, nil
}

package ltqp_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/podserver"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// TestFullToolchain exercises the complete deployment path of the
// demonstration environment: generate a dataset, persist it to disk
// (solidbench-gen's format), load it into a fresh pod server under a new
// origin (podserver --dir), and answer Discover queries against it by
// link traversal.
func TestFullToolchain(t *testing.T) {
	// 1. Generate under a placeholder origin and persist.
	cfg := solidbench.SmallConfig()
	cfg.Host = "https://solidbench.invalid"
	ds := solidbench.Generate(cfg)
	pods := ds.BuildPods()
	dir := t.TempDir()
	if err := podserver.SaveDir(dir, cfg.Host, pods); err != nil {
		t.Fatal(err)
	}

	// 2. Serve from disk under the live origin.
	ps := podserver.New()
	srv := httptest.NewServer(ps)
	defer srv.Close()
	if _, err := ps.LoadDir(dir, srv.URL); err != nil {
		t.Fatal(err)
	}

	// 3. Query by traversal. The catalog was generated for the
	// placeholder origin; regenerate it under the live origin (same seed
	// → same dataset, different host).
	cfg.Host = srv.URL
	liveDS := solidbench.Generate(cfg)
	q := liveDS.Discover(1, 1)

	engine := ltqp.New(ltqp.Config{Client: srv.Client(), Lenient: true})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := engine.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}

	// Expected: the person's non-image posts — identical across both
	// generations because the seed is fixed.
	want := 0
	for _, p := range liveDS.Posts {
		if p.Creator == q.Person && p.Image == "" {
			want++
		}
	}
	if len(results) != want {
		t.Errorf("results = %d, want %d", len(results), want)
	}
}

// TestEndToEndLatencyProfile verifies the paper's pipelining behaviour
// survives realistic network latency: with a slow pod server, the first
// result still arrives well before the last.
func TestEndToEndLatencyProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("latency profile test")
	}
	cfg := solidbench.SmallConfig()
	env := newIntegrationEnv(t, cfg, 10*time.Millisecond)
	q := env.Dataset.Discover(2, 1)
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	start := time.Now()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	var first, last time.Duration
	n := 0
	for range res.Results {
		if n == 0 {
			first = time.Since(start)
		}
		last = time.Since(start)
		n++
	}
	if n == 0 {
		t.Fatal("no results")
	}
	if first >= last && n > 1 {
		t.Errorf("no streaming: first=%v last=%v over %d results", first, last, n)
	}
	// With 10 ms per request and >50 documents, a non-pipelined engine
	// would need >500 ms before the first result.
	if first > last/2 && n > 10 {
		t.Logf("note: first result at %v of %v total (still streaming, but late)", first, last)
	}
}

// newIntegrationEnv builds a simulated environment with latency.
func newIntegrationEnv(t *testing.T, cfg solidbench.Config, latency time.Duration) *simenv.Env {
	t.Helper()
	env := simenv.New(cfg)
	t.Cleanup(env.Close)
	env.PodServer.Latency = latency
	return env
}

// TestLargeEnvironment runs the demonstration queries against a 200-pod
// environment (~4.4M characters of Turtle across ~28k documents) — an
// order of magnitude above the default test scale, an order below the
// paper's hosted deployment.
func TestLargeEnvironment(t *testing.T) {
	if testing.Short() {
		t.Skip("large environment (~20s)")
	}
	cfg := solidbench.DefaultConfig()
	cfg.Persons = 200
	env := newIntegrationEnv(t, cfg, 0)
	engine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Single-pod query: cost must not scale with environment size.
	start := time.Now()
	res, err := engine.Query(ctx, env.Dataset.Discover(1, 1).Text)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range res.Results {
		n++
	}
	if n == 0 {
		t.Fatal("Discover 1 found nothing at 200 pods")
	}
	reqs := res.Stats().Requests
	if reqs > 300 {
		t.Errorf("single-pod query made %d requests at 200 pods (should stay pod-local)", reqs)
	}
	t.Logf("Discover 1 at 200 pods: %d results, %d requests, %v", n, reqs, time.Since(start))

	// Multi-pod query with a document budget (as a deployment would set).
	capped := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, MaxDocuments: 3000})
	start = time.Now()
	res, err = capped.Query(ctx, env.Dataset.Discover(8, 1).Text)
	if err != nil {
		t.Fatal(err)
	}
	n = 0
	for range res.Results {
		n++
	}
	pods := res.Metrics().PodsTouched()
	if n == 0 || pods < 2 {
		t.Errorf("Discover 8 at 200 pods: %d results over %d pods", n, pods)
	}
	t.Logf("Discover 8 at 200 pods: %d results, %d requests over %d pods, %v",
		n, res.Stats().Requests, pods, time.Since(start))
}

package rdf

import (
	"fmt"
	"testing"
)

func TestDictInternDecodeRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewIRI("http://example.org/b"),
		NewLiteral("plain"),
		NewTypedLiteral("1", XSDInteger),
		NewTypedLiteral("01", XSDInteger),
		NewLangLiteral("two", "EN"), // canonicalized to @en by the constructor
		NewBlank("b1"),
		NewVar("x"),
	}
	ids := make([]TermID, len(terms))
	for i, term := range terms {
		ids[i] = d.Intern(term)
		if ids[i] == NoTerm {
			t.Fatalf("Intern(%s) = NoTerm", term)
		}
		if got := d.Decode(ids[i]); got != term {
			t.Fatalf("Decode(Intern(%s)) = %s", term, got)
		}
	}
	// IDs are dense, first-intern ordered, and stable on re-intern.
	for i, term := range terms {
		if ids[i] != TermID(i+1) {
			t.Errorf("id of term %d = %d, want %d", i, ids[i], i+1)
		}
		if again := d.Intern(term); again != ids[i] {
			t.Errorf("re-Intern(%s) = %d, want %d", term, again, ids[i])
		}
	}
	if d.Size() != len(terms) {
		t.Errorf("Size = %d, want %d", d.Size(), len(terms))
	}
}

func TestDictDistinctTermsDistinctIDs(t *testing.T) {
	d := NewDict()
	// Same lexical value, different kinds/datatypes/languages: all distinct.
	terms := []Term{
		NewIRI("x"),
		NewLiteral("x"),
		NewBlank("x"),
		NewVar("x"),
		NewTypedLiteral("x", XSDInteger),
		NewLangLiteral("x", "en"),
		NewLangLiteral("x", "de"),
	}
	seen := map[TermID]Term{}
	for _, term := range terms {
		id := d.Intern(term)
		if prev, dup := seen[id]; dup {
			t.Fatalf("terms %s and %s share id %d", prev, term, id)
		}
		seen[id] = term
	}
}

func TestDictZeroAndOutOfRange(t *testing.T) {
	d := NewDict()
	if id := d.Intern(Term{}); id != NoTerm {
		t.Errorf("Intern(zero) = %d, want NoTerm", id)
	}
	if got := d.Decode(NoTerm); !got.IsZero() {
		t.Errorf("Decode(NoTerm) = %s, want zero term", got)
	}
	if got := d.Decode(TermID(999)); !got.IsZero() {
		t.Errorf("Decode(out of range) = %s, want zero term", got)
	}
	if id, ok := d.Lookup(NewIRI("http://never")); ok || id != NoTerm {
		t.Errorf("Lookup(missing) = (%d, %v), want (NoTerm, false)", id, ok)
	}
	if id, ok := d.Lookup(Term{}); !ok || id != NoTerm {
		t.Errorf("Lookup(zero) = (%d, %v), want (NoTerm, true)", id, ok)
	}
}

func TestDictCanonicalSharesStorage(t *testing.T) {
	d := NewDict()
	first := NewIRI("http://example.org/shared")
	d.Intern(first)
	// A second, equal term built from different backing bytes.
	second := NewIRI("http://example.org/" + string([]byte("shared")))
	canon := d.Canonical(second)
	if canon != first {
		t.Fatalf("Canonical = %s, want %s", canon, first)
	}
	if got := d.Canonical(Term{}); !got.IsZero() {
		t.Errorf("Canonical(zero) = %s", got)
	}
}

func TestDictTripleRoundTrip(t *testing.T) {
	d := NewDict()
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	it := d.InternTriple(tr)
	if got := d.DecodeTriple(it); got != tr {
		t.Fatalf("DecodeTriple = %s, want %s", got, tr)
	}
	if got, ok := d.LookupTriple(tr); !ok || got != it {
		t.Fatalf("LookupTriple = (%v, %v)", got, ok)
	}
	missing := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("absent"))
	if _, ok := d.LookupTriple(missing); ok {
		t.Fatal("LookupTriple reported a never-interned triple present")
	}
}

func TestDictGrowsAcrossChunks(t *testing.T) {
	d := NewDict()
	n := dictChunkSize*2 + 37
	for i := 0; i < n; i++ {
		term := NewIRI(fmt.Sprintf("http://example.org/%d", i))
		if id := d.Intern(term); id != TermID(i+1) {
			t.Fatalf("id %d for term %d", id, i)
		}
	}
	for i := 0; i < n; i++ {
		want := NewIRI(fmt.Sprintf("http://example.org/%d", i))
		if got := d.Decode(TermID(i + 1)); got != want {
			t.Fatalf("Decode(%d) = %s, want %s", i+1, got, want)
		}
	}
	if d.Size() != n {
		t.Errorf("Size = %d, want %d", d.Size(), n)
	}
}

func TestPackID2(t *testing.T) {
	if PackID2(1, 2) == PackID2(2, 1) {
		t.Fatal("PackID2 is order-insensitive")
	}
	if PackID2(0, 1) == PackID2(1, 0) {
		t.Fatal("PackID2 collides on zero")
	}
}

func BenchmarkDictInternHit(b *testing.B) {
	d := NewDict()
	terms := make([]Term, 1000)
	for i := range terms {
		terms[i] = NewIRI(fmt.Sprintf("http://example.org/term/%d", i))
		d.Intern(terms[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(terms[i%len(terms)])
	}
}

func BenchmarkDictDecode(b *testing.B) {
	d := NewDict()
	for i := 0; i < 1000; i++ {
		d.Intern(NewIRI(fmt.Sprintf("http://example.org/term/%d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Decode(TermID(i%1000+1)).Kind != TermIRI {
			b.Fatal("bad decode")
		}
	}
}

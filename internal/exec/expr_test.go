package exec

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// evalStr parses and evaluates a single SPARQL expression against a
// binding, using a tiny SELECT wrapper to reuse the query parser.
func evalStr(t *testing.T, expr string, b rdf.Binding) (rdf.Term, error) {
	t.Helper()
	q, err := sparql.ParseQuery("SELECT ?x WHERE { ?x ?p ?o FILTER(" + expr + ") }")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	var filter sparql.Expression
	for _, e := range q.Where.Elements {
		if f, ok := e.(sparql.FilterPattern); ok {
			filter = f.Expr
		}
	}
	env := NewEnv(store.New())
	return evalExpr(env, filter, b)
}

// wantTerm asserts an expression evaluates to the term.
func wantTerm(t *testing.T, expr string, b rdf.Binding, want rdf.Term) {
	t.Helper()
	got, err := evalStr(t, expr, b)
	if err != nil {
		t.Errorf("%s: error %v", expr, err)
		return
	}
	if got != want {
		t.Errorf("%s = %v, want %v", expr, got, want)
	}
}

// wantBool asserts an expression evaluates to a boolean.
func wantBool(t *testing.T, expr string, b rdf.Binding, want bool) {
	t.Helper()
	wantTerm(t, expr, b, rdf.Boolean(want))
}

// wantErr asserts an expression raises a type error.
func wantErr(t *testing.T, expr string, b rdf.Binding) {
	t.Helper()
	if got, err := evalStr(t, expr, b); err == nil {
		t.Errorf("%s = %v, want error", expr, got)
	}
}

func TestArithmetic(t *testing.T) {
	wantTerm(t, "1 + 2", nil, rdf.Integer(3))
	wantTerm(t, "7 - 10", nil, rdf.Integer(-3))
	wantTerm(t, "6 * 7", nil, rdf.Integer(42))
	wantTerm(t, "7 / 2", nil, rdf.NewTypedLiteral("3.5", rdf.XSDDecimal))
	wantTerm(t, "1 + 2 * 3", nil, rdf.Integer(7))
	wantTerm(t, "-(5)", nil, rdf.Integer(-5))
	wantTerm(t, "2.5 + 1", nil, rdf.NewTypedLiteral("3.5", rdf.XSDDecimal))
	wantErr(t, `"a" + 1`, nil)
	wantErr(t, "1 / 0", nil)
}

func TestComparisons(t *testing.T) {
	wantBool(t, "3 < 4", nil, true)
	wantBool(t, "3 >= 4", nil, false)
	wantBool(t, "3.0 = 3", nil, true)
	wantBool(t, `"abc" < "abd"`, nil, true)
	wantBool(t, `"a" != "b"`, nil, true)
	wantBool(t, "true > false", nil, true)
	wantBool(t, `"2010-01-02"^^<`+rdf.XSDDate+`> > "2010-01-01"^^<`+rdf.XSDDate+`>`, nil, true)
	wantErr(t, `"a" < 3`, nil)
	// IRI equality is term equality.
	wantBool(t, "<http://a> = <http://a>", nil, true)
	wantBool(t, "<http://a> = <http://b>", nil, false)
	wantErr(t, "<http://a> < <http://b>", nil)
}

func TestLogicalThreeValued(t *testing.T) {
	wantBool(t, "true || false", nil, true)
	wantBool(t, "false && true", nil, false)
	// Errors behave as unknown: true || error = true, false && error = false.
	wantBool(t, "true || ?missing", nil, true)
	wantBool(t, "false && ?missing", nil, false)
	wantErr(t, "false || ?missing", nil)
	wantErr(t, "true && ?missing", nil)
	wantBool(t, "!false", nil, true)
}

func TestStringBuiltins(t *testing.T) {
	b := rdf.Binding{"s": rdf.NewLiteral("Hello World"), "l": rdf.NewLangLiteral("bonjour", "fr")}
	wantTerm(t, "STRLEN(?s)", b, rdf.Integer(11))
	wantTerm(t, "UCASE(?s)", b, rdf.NewLiteral("HELLO WORLD"))
	wantTerm(t, "LCASE(?s)", b, rdf.NewLiteral("hello world"))
	wantBool(t, `CONTAINS(?s, "World")`, b, true)
	wantBool(t, `STRSTARTS(?s, "Hello")`, b, true)
	wantBool(t, `STRENDS(?s, "ld")`, b, true)
	wantTerm(t, `STRBEFORE(?s, " ")`, b, rdf.NewLiteral("Hello"))
	wantTerm(t, `STRAFTER(?s, " ")`, b, rdf.NewLiteral("World"))
	wantTerm(t, `STRAFTER(?s, "@")`, b, rdf.NewLiteral(""))
	wantTerm(t, `CONCAT(?s, "!")`, b, rdf.NewLiteral("Hello World!"))
	wantTerm(t, `SUBSTR(?s, 7)`, b, rdf.NewLiteral("World"))
	wantTerm(t, `SUBSTR(?s, 1, 5)`, b, rdf.NewLiteral("Hello"))
	// Language tags propagate through string functions.
	wantTerm(t, "UCASE(?l)", b, rdf.NewLangLiteral("BONJOUR", "fr"))
	wantTerm(t, `CONCAT(?l, ?l)`, b, rdf.NewLangLiteral("bonjourbonjour", "fr"))
	wantTerm(t, `ENCODE_FOR_URI("a b/c")`, nil, rdf.NewLiteral("a%20b%2Fc"))
}

func TestRegexAndReplace(t *testing.T) {
	b := rdf.Binding{"s": rdf.NewLiteral("SPARQL engine")}
	wantBool(t, `REGEX(?s, "^SPAR")`, b, true)
	wantBool(t, `REGEX(?s, "^spar")`, b, false)
	wantBool(t, `REGEX(?s, "^spar", "i")`, b, true)
	wantTerm(t, `REPLACE(?s, "engine", "planner")`, b, rdf.NewLiteral("SPARQL planner"))
	wantTerm(t, `REPLACE("abc123", "([a-z]+)(\\d+)", "$2-$1")`, nil, rdf.NewLiteral("123-abc"))
	wantErr(t, `REGEX(?s, "([")`, b)
}

func TestTermBuiltins(t *testing.T) {
	b := rdf.Binding{
		"iri":  rdf.NewIRI("http://example.org/x"),
		"lit":  rdf.NewLiteral("v"),
		"lang": rdf.NewLangLiteral("v", "en-GB"),
		"num":  rdf.Integer(5),
		"bn":   rdf.NewBlank("b1"),
	}
	wantTerm(t, "STR(?iri)", b, rdf.NewLiteral("http://example.org/x"))
	wantTerm(t, "STR(?num)", b, rdf.NewLiteral("5"))
	wantTerm(t, "LANG(?lang)", b, rdf.NewLiteral("en-gb"))
	wantTerm(t, "LANG(?lit)", b, rdf.NewLiteral(""))
	wantTerm(t, "DATATYPE(?num)", b, rdf.NewIRI(rdf.XSDInteger))
	wantTerm(t, "DATATYPE(?lit)", b, rdf.NewIRI(rdf.XSDString))
	wantTerm(t, "DATATYPE(?lang)", b, rdf.NewIRI(rdf.RDFLangString))
	wantBool(t, "ISIRI(?iri)", b, true)
	wantBool(t, "ISIRI(?lit)", b, false)
	wantBool(t, "ISLITERAL(?lit)", b, true)
	wantBool(t, "ISBLANK(?bn)", b, true)
	wantBool(t, "ISNUMERIC(?num)", b, true)
	wantBool(t, "ISNUMERIC(?lit)", b, false)
	wantBool(t, "SAMETERM(?lit, ?lit)", b, true)
	wantBool(t, "SAMETERM(?lit, ?lang)", b, false)
	wantBool(t, "BOUND(?lit)", b, true)
	wantBool(t, "BOUND(?nope)", b, false)
	wantTerm(t, `IRI("http://x")`, b, rdf.NewIRI("http://x"))
	wantTerm(t, `STRLANG("hi", "en")`, b, rdf.NewLangLiteral("hi", "en"))
	wantTerm(t, `STRDT("5", <`+rdf.XSDInteger+`>)`, b, rdf.Integer(5))
	wantBool(t, `LANGMATCHES(LANG(?lang), "en")`, b, true)
	wantBool(t, `LANGMATCHES(LANG(?lang), "*")`, b, true)
	wantBool(t, `LANGMATCHES(LANG(?lit), "*")`, b, false)
}

func TestNumericBuiltins(t *testing.T) {
	wantTerm(t, "ABS(-2)", nil, rdf.Integer(2))
	wantTerm(t, "ABS(-2.5)", nil, rdf.NewTypedLiteral("2.5", rdf.XSDDecimal))
	wantTerm(t, "CEIL(2.2)", nil, rdf.NewTypedLiteral("3", rdf.XSDDecimal))
	wantTerm(t, "FLOOR(2.8)", nil, rdf.NewTypedLiteral("2", rdf.XSDDecimal))
	wantTerm(t, "ROUND(2.5)", nil, rdf.NewTypedLiteral("3", rdf.XSDDecimal))
	wantTerm(t, "CEIL(7)", nil, rdf.Integer(7))
	wantErr(t, `ABS("x")`, nil)
}

func TestDateTimeBuiltins(t *testing.T) {
	b := rdf.Binding{"d": rdf.NewTypedLiteral("2011-05-17T14:30:45Z", rdf.XSDDateTime)}
	wantTerm(t, "YEAR(?d)", b, rdf.Integer(2011))
	wantTerm(t, "MONTH(?d)", b, rdf.Integer(5))
	wantTerm(t, "DAY(?d)", b, rdf.Integer(17))
	wantTerm(t, "HOURS(?d)", b, rdf.Integer(14))
	wantTerm(t, "MINUTES(?d)", b, rdf.Integer(30))
	wantTerm(t, "SECONDS(?d)", b, rdf.Integer(45))
	wantTerm(t, "TZ(?d)", b, rdf.NewLiteral("Z"))
	wantErr(t, `YEAR("nope")`, nil)
	// NOW() is fixed per environment.
	v, err := evalStr(t, "YEAR(NOW())", nil)
	if err != nil || v != rdf.Integer(2024) {
		t.Errorf("YEAR(NOW()) = %v, %v", v, err)
	}
}

func TestConditionals(t *testing.T) {
	b := rdf.Binding{"x": rdf.Integer(5)}
	wantTerm(t, `IF(?x > 3, "big", "small")`, b, rdf.NewLiteral("big"))
	wantTerm(t, `IF(?x < 3, "big", "small")`, b, rdf.NewLiteral("small"))
	wantTerm(t, `COALESCE(?missing, ?x, "fallback")`, b, rdf.Integer(5))
	wantTerm(t, `COALESCE(?missing, "fallback")`, b, rdf.NewLiteral("fallback"))
	wantErr(t, `COALESCE(?m1, ?m2)`, b)
	wantErr(t, `IF(?missing, 1, 2)`, b)
}

func TestCasts(t *testing.T) {
	// The wrapper query declares no prefixes — use full IRIs for casts.
	wantTerm(t, `<`+rdf.XSDInteger+`>("42")`, nil, rdf.Integer(42))
	wantTerm(t, `<`+rdf.XSDInteger+`>(3.9)`, nil, rdf.Integer(3))
	wantTerm(t, `<`+rdf.XSDDouble+`>("2.5")`, nil, rdf.NewTypedLiteral("2.5", rdf.XSDDouble))
	wantTerm(t, `<`+rdf.XSDBoolean+`>(1)`, nil, rdf.Boolean(true))
	wantTerm(t, `<`+rdf.XSDBoolean+`>("true")`, nil, rdf.Boolean(true))
	wantTerm(t, `<`+rdf.XSDString+`>(42)`, nil, rdf.NewLiteral("42"))
	wantTerm(t, `<`+rdf.XSDInteger+`>(true)`, nil, rdf.Integer(1))
	wantErr(t, `<`+rdf.XSDInteger+`>("abc")`, nil)
	wantErr(t, `<`+rdf.XSDDateTime+`>("abc")`, nil)
}

func TestHashFunctions(t *testing.T) {
	v, err := evalStr(t, `MD5("abc")`, nil)
	if err != nil || v.Value != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("MD5 = %v, %v", v, err)
	}
	v, err = evalStr(t, `SHA1("abc")`, nil)
	if err != nil || v.Value != "a9993e364706816aba3e25717850c26c9cd0d89d" {
		t.Errorf("SHA1 = %v, %v", v, err)
	}
	v, err = evalStr(t, `SHA256("abc")`, nil)
	if err != nil || !strings.HasPrefix(v.Value, "ba7816bf8f01cfea") {
		t.Errorf("SHA256 = %v, %v", v, err)
	}
}

func TestGenerativeBuiltins(t *testing.T) {
	env := NewEnv(store.New())
	q, _ := sparql.ParseQuery(`SELECT ?x WHERE { ?x ?p ?o FILTER(BNODE() != BNODE()) }`)
	var filter sparql.Expression
	for _, e := range q.Where.Elements {
		if f, ok := e.(sparql.FilterPattern); ok {
			filter = f.Expr
		}
	}
	v, err := evalExpr(env, filter, nil)
	if err != nil || v != rdf.Boolean(true) {
		t.Errorf("distinct BNODEs = %v, %v", v, err)
	}
	// RAND in [0, 1).
	r, err := evalStr(t, "RAND() >= 0 && RAND() < 1", nil)
	if err != nil || r != rdf.Boolean(true) {
		t.Errorf("RAND bounds = %v, %v", r, err)
	}
	// UUID shape.
	u, err := evalStr(t, "STRUUID()", nil)
	if err != nil || len(u.Value) != 36 {
		t.Errorf("STRUUID = %v, %v", u, err)
	}
	iri, err := evalStr(t, "UUID()", nil)
	if err != nil || !strings.HasPrefix(iri.Value, "urn:uuid:") {
		t.Errorf("UUID = %v, %v", iri, err)
	}
}

func TestOrderCompare(t *testing.T) {
	cases := []struct {
		a, b rdf.Term
		want int // sign
	}{
		{rdf.Term{}, rdf.NewBlank("b"), -1},
		{rdf.NewBlank("b"), rdf.NewIRI("http://a"), -1},
		{rdf.NewIRI("http://a"), rdf.NewLiteral("z"), -1},
		{rdf.Integer(2), rdf.Integer(10), -1},
		{rdf.Integer(2), rdf.NewTypedLiteral("2.0", rdf.XSDDouble), 0},
		{rdf.NewLiteral("a"), rdf.NewLiteral("b"), -1},
		{rdf.NewTypedLiteral("2010-01-02", rdf.XSDDate), rdf.NewTypedLiteral("2010-01-01", rdf.XSDDate), 1},
	}
	for _, c := range cases {
		got := orderCompare(c.a, c.b)
		switch {
		case c.want < 0 && got >= 0, c.want == 0 && got != 0, c.want > 0 && got <= 0:
			t.Errorf("orderCompare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTermsEqualValueSemantics(t *testing.T) {
	// "02"^^xsd:integer equals "2"^^xsd:integer by value.
	eq, err := termsEqual(rdf.NewTypedLiteral("02", rdf.XSDInteger), rdf.Integer(2))
	if err != nil || !eq {
		t.Errorf("02 = 2: %v, %v", eq, err)
	}
	// Unknown datatypes with different lexical forms: type error.
	_, err = termsEqual(rdf.NewTypedLiteral("a", "http://dt"), rdf.NewTypedLiteral("b", "http://dt"))
	if err == nil {
		t.Error("unknown datatype comparison should error")
	}
	// Same term: equal without error.
	eq, err = termsEqual(rdf.NewTypedLiteral("a", "http://dt"), rdf.NewTypedLiteral("a", "http://dt"))
	if err != nil || !eq {
		t.Errorf("identical unknown-dt terms: %v, %v", eq, err)
	}
	// dateTime value equality across lexical forms.
	eq, err = termsEqual(
		rdf.NewTypedLiteral("2010-01-01T00:00:00Z", rdf.XSDDateTime),
		rdf.NewTypedLiteral("2010-01-01T00:00:00.000Z", rdf.XSDDateTime))
	if err != nil || !eq {
		t.Errorf("dateTime equality: %v, %v", eq, err)
	}
}

// Package serve is the multi-tenant serving subsystem: the pieces that make
// one engine process safely shareable by thousands of concurrent clients.
//
//   - SharedCache: a cross-query (and cross-engine) document cache layered
//     under internal/deref. Entries hold the parsed, dictionary-interned
//     triples of a dereferenced document together with its HTTP cache
//     validators; fresh entries are served without a network request, stale
//     entries revalidate with a conditional GET (a 304 keeps the cached
//     parse), the whole cache is bounded by a byte budget with LRU eviction,
//     and an epoch counter invalidates everything at once without dropping
//     validators (post-bump accesses revalidate instead of refetching).
//   - Singleflight dereference dedup, built into SharedCache: N concurrent
//     queries dereferencing the same IRI issue exactly one upstream fetch
//     and share the parsed document.
//   - Admission: a bounded query queue with per-tenant concurrency quotas,
//     round-robin fairness across waiting tenants, and 429 + Retry-After
//     rejections on overload.
//   - ResultCache: completed query results keyed on (normalized query,
//     seeds, cache epoch), so repeated identical queries skip traversal
//     entirely until the document cache is invalidated.
//
// The dereference cost of link traversal dominates end-to-end latency, so a
// shared cache plus singleflight converts a thousand clients re-traversing
// the same pods from a thousand fetch storms into one.
package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ltqp/internal/deref"
	"ltqp/internal/obs"
)

// DefaultMaxBytes is the default shared-cache byte budget (64 MiB).
const DefaultMaxBytes = 64 << 20

// DefaultTTL is the default freshness lifetime: entries younger than this
// are served without revalidation, older ones issue a conditional GET.
const DefaultTTL = time.Minute

// SharedCacheOptions configures a SharedCache.
type SharedCacheOptions struct {
	// MaxBytes bounds the total body bytes of cached documents (default
	// DefaultMaxBytes). Documents larger than the budget are never cached.
	MaxBytes int64
	// TTL is the freshness lifetime before an entry must revalidate
	// (default DefaultTTL; negative means every access revalidates).
	TTL time.Duration
	// Obs, when non-nil, receives the shared-cache counters and occupancy
	// gauges (ltqp_shared_cache_*, ltqp_singleflight_dedup_total).
	Obs *obs.Metrics
	// Events, when non-nil, receives cache_hit / cache_revalidated /
	// cache_evicted events, stamped with the requesting query's id.
	Events *obs.Bus

	// now is a test hook for the freshness clock.
	now func() time.Time
}

// SharedCache is a byte-bounded, revalidating, singleflight-deduplicating
// document cache shared across all queries (and engines) of one process.
// It implements deref.SharedCache; set it on deref.Dereferencer.Shared (or
// core.Options.Shared / ltqp.Config.SharedCache) to layer it under the
// dereferencer. Safe for concurrent use.
type SharedCache struct {
	maxBytes int64
	ttl      time.Duration
	obs      *obs.Metrics
	events   *obs.Bus
	now      func() time.Time

	epoch atomic.Uint64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	flights map[string]*flight

	hits, misses, revalidations, notModified, evictions, dedups atomic.Int64
	// duplicateInflight counts violations of the singleflight invariant
	// (two live fetches for one key). It is structurally impossible and
	// asserted at runtime so load harnesses can prove it stayed zero.
	duplicateInflight atomic.Int64
}

// sharedEntry is one cached document.
type sharedEntry struct {
	key     string
	res     *deref.Result
	fetched time.Time // when the entry was fetched or last revalidated
	epoch   uint64    // invalidation epoch the entry is valid for
	cost    int64
}

// NewSharedCache builds a shared document cache.
func NewSharedCache(o SharedCacheOptions) *SharedCache {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.TTL == 0 {
		o.TTL = DefaultTTL
	}
	if o.now == nil {
		o.now = time.Now
	}
	return &SharedCache{
		maxBytes: o.MaxBytes,
		ttl:      o.TTL,
		obs:      o.Obs,
		events:   o.Events,
		now:      o.now,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		flights:  map[string]*flight{},
	}
}

// Dereference implements deref.SharedCache: serve key from cache when
// fresh, revalidate stale entries with a conditional fetch, collapse
// concurrent fetches of the same key into one, and account everything.
func (c *SharedCache) Dereference(ctx context.Context, key, url string, fetch deref.FetchFunc) (*deref.Result, bool, error) {
	for {
		epoch := c.epoch.Load()
		now := c.now()

		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*sharedEntry)
			if e.epoch == epoch && (c.ttl < 0 || now.Sub(e.fetched) <= c.ttl) {
				c.lru.MoveToFront(el)
				res := e.res
				c.mu.Unlock()
				c.hits.Add(1)
				obs.On(c.obs).SharedCacheHits.Inc()
				if c.events.Active() {
					c.events.Publish(obs.Event{Kind: obs.EventCacheHit, URL: url,
						Query: obs.QueryIDFromContext(ctx)})
				}
				return res, true, nil
			}
			// Stale (TTL elapsed or epoch bumped): fall through to a
			// singleflight revalidation.
		}
		c.mu.Unlock()

		res, shared, err := c.do(ctx, key, func() (*deref.Result, error) {
			return c.refresh(ctx, key, url, fetch, epoch)
		})
		if err != nil {
			// A follower whose leader was cancelled retries as its own
			// leader: its query may still be alive.
			if shared && ctx.Err() == nil && isContextErr(err) {
				continue
			}
			return nil, false, err
		}
		return res, shared, nil
	}
}

// refresh is the singleflight leader's work: fetch or revalidate key and
// update the cache. Called with no locks held.
func (c *SharedCache) refresh(ctx context.Context, key, url string, fetch deref.FetchFunc, epoch uint64) (*deref.Result, error) {
	var vals deref.Validators
	var stale *deref.Result
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*sharedEntry)
		vals = e.res.Validators
		stale = e.res
	}
	c.mu.Unlock()

	if stale == nil {
		c.misses.Add(1)
		obs.On(c.obs).SharedCacheMisses.Inc()
	} else {
		c.revalidations.Add(1)
		obs.On(c.obs).SharedCacheRevalidations.Inc()
	}

	res, err := fetch(ctx, vals)
	if err != nil {
		// The stale entry survives: a later request retries the
		// revalidation, and a bumped epoch still invalidates it.
		return nil, err
	}

	now := c.now()
	if res.NotModified && stale != nil {
		// The cached parse is still current: refresh its lease.
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*sharedEntry)
			e.fetched = now
			e.epoch = c.epoch.Load()
			c.lru.MoveToFront(el)
		} else {
			// Evicted while we revalidated: reinstate the stale parse.
			c.insertLocked(key, stale, now)
		}
		c.mu.Unlock()
		c.notModified.Add(1)
		obs.On(c.obs).SharedCacheNotModified.Inc()
		c.publishGauges()
		if c.events.Active() {
			c.events.Publish(obs.Event{Kind: obs.EventCacheRevalidated, URL: url,
				Status: 304, Query: obs.QueryIDFromContext(ctx)})
		}
		return stale, nil
	}

	c.mu.Lock()
	c.insertLocked(key, res, now)
	c.mu.Unlock()
	c.publishGauges()
	if stale != nil && c.events.Active() {
		c.events.Publish(obs.Event{Kind: obs.EventCacheRevalidated, URL: url,
			Status: res.Status, Query: obs.QueryIDFromContext(ctx)})
	}
	return res, nil
}

// insertLocked stores res under key and evicts LRU entries past the byte
// budget. Caller holds c.mu.
func (c *SharedCache) insertLocked(key string, res *deref.Result, now time.Time) {
	cost := res.Bytes
	if cost < 1 {
		cost = 1
	}
	if cost > c.maxBytes {
		return // a document larger than the whole budget is never cached
	}
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*sharedEntry)
		c.bytes -= old.cost
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	e := &sharedEntry{key: key, res: res, fetched: now, epoch: c.epoch.Load(), cost: cost}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += cost
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		last := c.lru.Back()
		victim := last.Value.(*sharedEntry)
		c.lru.Remove(last)
		delete(c.entries, victim.key)
		c.bytes -= victim.cost
		c.evictions.Add(1)
		obs.On(c.obs).SharedCacheEvictions.Inc()
		if c.events.Active() {
			c.events.Publish(obs.Event{Kind: obs.EventCacheEvicted, URL: victim.res.URL,
				Bytes: victim.cost})
		}
	}
}

// publishGauges refreshes the occupancy gauges.
func (c *SharedCache) publishGauges() {
	if c.obs == nil {
		return
	}
	c.mu.Lock()
	bytes, docs := c.bytes, c.lru.Len()
	c.mu.Unlock()
	c.obs.SharedCacheBytes.Set(bytes)
	c.obs.SharedCacheDocuments.Set(int64(docs))
}

// Invalidate bumps the cache epoch: every entry becomes stale at once and
// must revalidate (cheap 304s for unchanged documents) before being served
// again, and result caches keyed on the epoch miss. Returns the new epoch.
func (c *SharedCache) Invalidate() uint64 {
	return c.epoch.Add(1)
}

// Epoch returns the current invalidation epoch (0 until first Invalidate).
// Result caches include it in their keys so epoch bumps invalidate them too.
func (c *SharedCache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Len returns the number of cached documents.
func (c *SharedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the cache's current byte occupancy.
func (c *SharedCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// CacheStats is a point-in-time snapshot of the shared cache's counters.
type CacheStats struct {
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Revalidations int64  `json:"revalidations"`
	NotModified   int64  `json:"not_modified"`
	Evictions     int64  `json:"evictions"`
	Dedups        int64  `json:"dedups"`
	Bytes         int64  `json:"bytes"`
	Documents     int    `json:"documents"`
	Epoch         uint64 `json:"epoch"`
	// DuplicateInflight counts singleflight invariant violations (two live
	// upstream fetches for one key). Always 0; load harnesses assert it.
	DuplicateInflight int64 `json:"duplicate_inflight"`
}

// HitRatio is hits / (hits + misses), 0 when idle.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the cache counters.
func (c *SharedCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	bytes, docs := c.bytes, c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Revalidations:     c.revalidations.Load(),
		NotModified:       c.notModified.Load(),
		Evictions:         c.evictions.Load(),
		Dedups:            c.dedups.Load(),
		Bytes:             bytes,
		Documents:         docs,
		Epoch:             c.epoch.Load(),
		DuplicateInflight: c.duplicateInflight.Load(),
	}
}

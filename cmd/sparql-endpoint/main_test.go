package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func newEndpoint(t *testing.T) (*httptest.Server, *simenv.Env) {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	h := NewHandler(ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true}), 2*time.Minute)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, env
}

func TestProtocolGetSelectJSON(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Discover(1, 1)
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type = %s", ct)
	}
	var parsed struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]interface{} `json:"bindings"`
		} `json:"results"`
	}
	body, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("not results JSON: %v\n%s", err, body)
	}
	if len(parsed.Results.Bindings) == 0 {
		t.Error("no bindings")
	}
	if len(parsed.Head.Vars) != 3 {
		t.Errorf("vars = %v", parsed.Head.Vars)
	}
}

func TestProtocolPostForms(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Discover(5, 1)

	// application/x-www-form-urlencoded
	resp, err := http.PostForm(srv.URL, url.Values{"query": {q.Text}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("form POST status = %d", resp.StatusCode)
	}

	// application/sparql-query
	req, _ := http.NewRequest(http.MethodPost, srv.URL, strings.NewReader(q.Text))
	req.Header.Set("Content-Type", "application/sparql-query")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("direct POST status = %d", resp.StatusCode)
	}
}

func TestProtocolContentNegotiation(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Discover(5, 1)
	for accept, wantCT := range map[string]string{
		"text/csv":                  "text/csv",
		"text/tab-separated-values": "text/tab-separated-values",
	} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+url.QueryEscape(q.Text), nil)
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != wantCT {
			t.Errorf("accept %s → %s", accept, ct)
		}
		if len(body) == 0 {
			t.Errorf("accept %s: empty body", accept)
		}
	}
}

func TestProtocolAsk(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Catalog()[36] // Short 5: ASK
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"boolean"`) {
		t.Errorf("ask body = %s", body)
	}
}

func TestProtocolConstructTurtle(t *testing.T) {
	srv, env := newEndpoint(t)
	v := solidbench.NewVocab(env.Dataset.Config.Host)
	query := `PREFIX snvoc: <` + v.NS() + `>
CONSTRUCT { ?m snvoc:content ?c } WHERE {
  ?m snvoc:hasCreator <` + env.Dataset.WebID(0) + `>;
     snvoc:content ?c.
}`
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/turtle" {
		t.Errorf("content type = %s", ct)
	}
	if !strings.Contains(string(body), "vocabulary/content") {
		t.Errorf("turtle body = %s", truncateStr(string(body), 300))
	}

	// N-Triples via Accept.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+url.QueryEscape(query), nil)
	req.Header.Set("Accept", "application/n-triples")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-triples" {
		t.Errorf("nt content type = %s", ct)
	}
}

func TestProtocolErrors(t *testing.T) {
	srv, _ := newEndpoint(t)
	// Missing query.
	resp, _ := http.Get(srv.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
	// Parse error.
	resp, _ = http.Get(srv.URL + "?query=" + url.QueryEscape("NOT SPARQL"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
	// Bad method.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL, nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("DELETE status = %d", resp.StatusCode)
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// newObservedEndpoint builds the same mux main() serves: the SPARQL
// handler plus the observer's /metrics, /healthz and /debug/queries.
func newObservedEndpoint(t *testing.T) (*httptest.Server, *simenv.Env, *ltqp.Observer) {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	observer := ltqp.NewObserver()
	h := NewHandler(ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, Obs: observer, CacheDocuments: 64}), 2*time.Minute)
	mux := http.NewServeMux()
	mux.Handle("/sparql", h)
	observer.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, env, observer
}

// TestMetricsEndpoint is the acceptance check: after a query, GET /metrics
// returns Prometheus text whose ltqp_deref_duration_seconds count matches
// the query's successful document count, alongside the required counter
// families.
func TestMetricsEndpoint(t *testing.T) {
	srv, env, observer := newObservedEndpoint(t)
	q := env.Dataset.Discover(1, 1)
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %s", ct)
	}
	text := string(body)
	for _, want := range []string{
		"ltqp_queries_total 1",
		"ltqp_documents_fetched_total",
		"ltqp_cache_hits_total",
		"# TYPE ltqp_deref_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, truncateStr(text, 600))
		}
	}
	// Histogram count == the query's successful document count.
	rec := observer.Tracker.Recent()
	if len(rec) != 1 {
		t.Fatalf("tracked queries = %d", len(rec))
	}
	docs := observer.Metrics.DocumentsFetched.Value() + observer.Metrics.CacheHits.Value()
	want := fmt.Sprintf("ltqp_deref_duration_seconds_count %d", docs)
	if !strings.Contains(text, want) {
		t.Errorf("/metrics missing %q", want)
	}

	// Health and query-debug endpoints respond.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz = %s", body)
	}
	resp, err = http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var dbg struct {
		Recent []struct {
			Query   string `json:"query"`
			Done    bool   `json:"done"`
			Results int    `json:"results"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatalf("debug/queries: %v", err)
	}
	resp.Body.Close()
	if len(dbg.Recent) != 1 || !dbg.Recent[0].Done || dbg.Recent[0].Results == 0 {
		t.Errorf("debug/queries recent = %+v", dbg.Recent)
	}
}

// TestEndpointConcurrentQueries exercises the whole protocol stack with
// parallel clients under -race and asserts the registry aggregates exactly
// once per query.
func TestEndpointConcurrentQueries(t *testing.T) {
	srv, env, observer := newObservedEndpoint(t)
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := env.Dataset.Discover(1+i%3, 1)
			resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(q.Text))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := observer.Metrics
	if got := m.QueriesStarted.Value(); got != n {
		t.Errorf("queries_total = %d, want %d", got, n)
	}
	if got := m.QueriesSucceeded.Value(); got != n {
		t.Errorf("queries_succeeded_total = %d, want %d", got, n)
	}
	if got := len(observer.Tracker.Recent()); got != n {
		t.Errorf("tracked recent = %d, want %d", got, n)
	}
	// Each tracked query's span tree is self-contained: exactly one
	// root-level traverse and exec stage per trace.
	for _, rec := range observer.Tracker.Recent() {
		if rec.Trace == nil {
			t.Fatalf("query %d has no trace", rec.ID)
		}
		root := rec.Trace.Root()
		if root.Count("traverse") != 1 || root.Count("exec") != 1 {
			t.Errorf("query %d: traverse=%d exec=%d (interleaved spans?)",
				rec.ID, root.Count("traverse"), root.Count("exec"))
		}
	}
}

package metrics

import (
	"strings"
	"testing"
	"time"
)

func record(r *Recorder, url, parent string, startMS, durMS int, status int, bytes int64) {
	epoch := r.Epoch()
	r.Record(Request{
		URL: url, Parent: parent, Reason: "test",
		Start:  epoch.Add(time.Duration(startMS) * time.Millisecond),
		End:    epoch.Add(time.Duration(startMS+durMS) * time.Millisecond),
		Status: status, Bytes: bytes, Triples: 10,
	})
}

func TestStatsDepthAndParallelism(t *testing.T) {
	r := NewRecorder()
	record(r, "http://h/pods/1/profile/card", "", 0, 10, 200, 100)
	record(r, "http://h/pods/1/settings/ti", "http://h/pods/1/profile/card", 10, 10, 200, 100)
	record(r, "http://h/pods/1/posts/", "http://h/pods/1/settings/ti", 20, 10, 200, 100)
	record(r, "http://h/pods/1/posts/a", "http://h/pods/1/posts/", 30, 20, 200, 100)
	record(r, "http://h/pods/1/posts/b", "http://h/pods/1/posts/", 30, 20, 200, 100)
	record(r, "http://h/pods/2/profile/card", "http://h/pods/1/posts/a", 55, 10, 404, 0)

	s := r.Stats()
	if s.Requests != 6 {
		t.Errorf("Requests = %d", s.Requests)
	}
	if s.Failed != 1 {
		t.Errorf("Failed = %d", s.Failed)
	}
	if s.MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", s.MaxDepth)
	}
	if s.MaxParallel != 2 {
		t.Errorf("MaxParallel = %d, want 2", s.MaxParallel)
	}
	if s.TotalBytes != 500 {
		t.Errorf("TotalBytes = %d", s.TotalBytes)
	}
	if s.TotalTriples != 60 {
		t.Errorf("TotalTriples = %d", s.TotalTriples)
	}
	if s.DistinctHosts != 2 {
		t.Errorf("DistinctHosts = %d (two pods on one host)", s.DistinctHosts)
	}
}

func TestPodsTouched(t *testing.T) {
	r := NewRecorder()
	record(r, "http://h/pods/1/profile/card", "", 0, 5, 200, 1)
	record(r, "http://h/pods/1/posts/a", "", 5, 5, 200, 1)
	record(r, "http://h/pods/2/profile/card", "", 10, 5, 200, 1)
	record(r, "http://h/other/doc", "", 15, 5, 200, 1)
	if got := r.PodsTouched(); got != 2 {
		t.Errorf("PodsTouched = %d, want 2", got)
	}
}

func TestResultTimes(t *testing.T) {
	r := NewRecorder()
	if _, ok := r.TimeToFirstResult(); ok {
		t.Error("TTFR before any result should be !ok")
	}
	r.RecordResult()
	r.RecordResult()
	times := r.ResultTimes()
	if len(times) != 2 {
		t.Fatalf("results = %d", len(times))
	}
	ttfr, ok := r.TimeToFirstResult()
	if !ok || ttfr < 0 {
		t.Errorf("TTFR = %v, %v", ttfr, ok)
	}
}

func TestWaterfallRendering(t *testing.T) {
	r := NewRecorder()
	record(r, "http://h/pods/1/profile/card", "", 0, 10, 200, 321)
	record(r, "http://h/pods/1/posts/a", "http://h/pods/1/profile/card", 10, 30, 200, 999)
	out := r.Waterfall(40)
	if !strings.Contains(out, "profile/card") {
		t.Errorf("missing URL:\n%s", out)
	}
	if !strings.Contains(out, "2 requests") {
		t.Errorf("missing summary:\n%s", out)
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "|") {
		t.Errorf("missing bars:\n%s", out)
	}
	// Rows are sorted by start: card before posts/a.
	if strings.Index(out, "profile/card") > strings.Index(out, "posts/a") {
		t.Errorf("rows out of order:\n%s", out)
	}
}

func TestWaterfallEmpty(t *testing.T) {
	r := NewRecorder()
	if out := r.Waterfall(40); !strings.Contains(out, "no requests") {
		t.Errorf("empty waterfall = %q", out)
	}
}

func TestDependencyEdges(t *testing.T) {
	r := NewRecorder()
	record(r, "http://a", "", 0, 5, 200, 1)
	record(r, "http://b", "http://a", 5, 5, 200, 1)
	record(r, "http://c", "http://a", 6, 5, 200, 1)
	edges := r.DependencyEdges()
	if len(edges) != 2 || edges[0] != [2]string{"http://a", "http://b"} {
		t.Errorf("edges = %v", edges)
	}
}

func TestShorten(t *testing.T) {
	long := "http://example.org/very/long/path/to/document"
	s := shorten(long, 20)
	if len([]rune(s)) > 20 {
		t.Errorf("shorten produced %d runes", len([]rune(s)))
	}
	if !strings.HasSuffix(long, strings.TrimPrefix(s, "…")) {
		t.Errorf("shorten should keep the tail: %q", s)
	}
	if shorten("short", 20) != "short" {
		t.Error("short strings unchanged")
	}
}

func TestRequestDuration(t *testing.T) {
	now := time.Now()
	q := Request{Start: now, End: now.Add(30 * time.Millisecond)}
	if q.Duration() != 30*time.Millisecond {
		t.Errorf("Duration = %v", q.Duration())
	}
}

func TestQueueEvolution(t *testing.T) {
	r := NewRecorder()
	if got := r.QueueEvolution(); len(got) != 0 {
		t.Errorf("fresh recorder queue samples = %v", got)
	}
	r.RecordQueueSample(3, 4)
	r.RecordQueueSample(7, 10)
	r.RecordQueueSample(1, 12)
	samples := r.QueueEvolution()
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Error("samples out of order")
		}
	}
	if samples[1].Length != 7 || samples[1].Seen != 10 {
		t.Errorf("sample 1 = %+v", samples[1])
	}
	if r.PeakQueueLength() != 7 {
		t.Errorf("peak = %d", r.PeakQueueLength())
	}
}

// recordAttempt is record plus an attempt number and error string.
func recordAttempt(r *Recorder, url string, attempt int, status int, errStr string) {
	epoch := r.Epoch()
	r.Record(Request{
		URL: url, Reason: "test", Attempt: attempt,
		Start:  epoch,
		End:    epoch.Add(5 * time.Millisecond),
		Status: status, Err: errStr,
	})
}

func TestStatsRetriesAndFailedDocuments(t *testing.T) {
	r := NewRecorder()
	// Document a: two failed attempts, then success — retried, not lost.
	recordAttempt(r, "http://h/a", 1, 503, "status 503")
	recordAttempt(r, "http://h/a", 2, 503, "status 503")
	recordAttempt(r, "http://h/a", 3, 200, "")
	// Document b: all attempts fail — abandoned.
	recordAttempt(r, "http://h/b", 1, 500, "status 500")
	recordAttempt(r, "http://h/b", 2, 0, "connection reset")
	// Document c: clean single-attempt success.
	recordAttempt(r, "http://h/c", 1, 200, "")

	s := r.Stats()
	if s.Retries != 3 {
		t.Errorf("Retries = %d, want 3", s.Retries)
	}
	if s.FailedDocuments != 1 {
		t.Errorf("FailedDocuments = %d, want 1", s.FailedDocuments)
	}
	if s.Failed != 4 {
		t.Errorf("Failed = %d, want 4 (per-attempt failures)", s.Failed)
	}
}

func TestDegradationReport(t *testing.T) {
	r := NewRecorder()
	recordAttempt(r, "http://h/lost1", 1, 503, "status 503")
	recordAttempt(r, "http://h/lost1", 2, 503, "status 503")
	recordAttempt(r, "http://h/recovered", 1, 429, "status 429")
	recordAttempt(r, "http://h/recovered", 2, 200, "")
	recordAttempt(r, "http://h/lost2", 1, 404, "status 404")

	d := r.Degradation()
	if !d.Degraded() {
		t.Fatal("Degraded() = false")
	}
	if d.Retries != 2 {
		t.Errorf("Retries = %d, want 2", d.Retries)
	}
	want := []string{"http://h/lost1", "http://h/lost2"}
	if len(d.FailedDocuments) != 2 || d.FailedDocuments[0] != want[0] || d.FailedDocuments[1] != want[1] {
		t.Errorf("FailedDocuments = %v, want %v", d.FailedDocuments, want)
	}

	if (Degradation{}).Degraded() {
		t.Error("empty degradation reports Degraded")
	}
}

func TestWaterfallMarksRetries(t *testing.T) {
	r := NewRecorder()
	recordAttempt(r, "http://h/pods/1/doc", 1, 503, "status 503")
	recordAttempt(r, "http://h/pods/1/doc", 2, 200, "")
	out := r.Waterfall(40)
	if !strings.Contains(out, "(retry 1)") {
		t.Errorf("waterfall does not mark the retry row:\n%s", out)
	}
	if !strings.Contains(out, "1 retries") {
		t.Errorf("summary lacks retry count:\n%s", out)
	}
}

package rdf

import "testing"

// FuzzDictRoundTrip pins the dictionary bijection for arbitrary valid
// terms: intern→decode must be the identity, and re-interning must return
// the same ID. Terms are built through the package constructors, so the
// fuzzer explores exactly the term space the parsers can produce (including
// the canonicalizations the constructors apply: lower-cased language tags,
// xsd:string folded to the empty datatype).
func FuzzDictRoundTrip(f *testing.F) {
	f.Add(uint8(0), "http://example.org/a", "", "")
	f.Add(uint8(1), "plain literal", "", "")
	f.Add(uint8(2), "1", "http://www.w3.org/2001/XMLSchema#integer", "")
	f.Add(uint8(2), "01", "http://www.w3.org/2001/XMLSchema#integer", "")
	f.Add(uint8(3), "two", "", "EN")
	f.Add(uint8(4), "b1", "", "")
	f.Add(uint8(5), "x", "", "")
	f.Add(uint8(2), "s", "http://www.w3.org/2001/XMLSchema#string", "")
	f.Add(uint8(1), "\x00\xff not utf8 \xf0", "", "")

	f.Fuzz(func(t *testing.T, kind uint8, value, datatype, lang string) {
		var term Term
		switch kind % 6 {
		case 0:
			term = NewIRI(value)
		case 1:
			term = NewLiteral(value)
		case 2:
			term = NewTypedLiteral(value, datatype)
		case 3:
			term = NewLangLiteral(value, lang)
		case 4:
			term = NewBlank(value)
		default:
			term = NewVar(value)
		}

		d := NewDict()
		id := d.Intern(term)
		if term.IsZero() {
			if id != NoTerm {
				t.Fatalf("Intern(zero term) = %d, want NoTerm", id)
			}
			return
		}
		if id == NoTerm {
			t.Fatalf("Intern(%s) = NoTerm for a non-zero term", term)
		}
		if got := d.Decode(id); got != term {
			t.Fatalf("Decode(Intern(%s)) = %s: round trip not identity", term, got)
		}
		if again := d.Intern(term); again != id {
			t.Fatalf("re-Intern(%s) = %d, want stable %d", term, again, id)
		}
		if canon := d.Canonical(term); canon != term {
			t.Fatalf("Canonical(%s) = %s", term, canon)
		}
		if got, ok := d.Lookup(term); !ok || got != id {
			t.Fatalf("Lookup(%s) = (%d, %v), want (%d, true)", term, got, ok, id)
		}
	})
}

// Package store provides the engine's internal triple source: a concurrent,
// append-only, indexed triple store that grows while link traversal is
// running and supports *live* pattern iterators.
//
// A live iterator first streams all currently known matches of a triple
// pattern and then blocks until either new matching triples arrive or the
// store is closed (traversal finished). This is what allows the query
// pipeline to start producing results while documents are still being
// dereferenced, as described in the paper's architecture (Fig. 1).
package store

import (
	"context"
	"sync"

	"ltqp/internal/rdf"
)

// Store is the growing internal triple source. The zero value is not usable;
// construct with New.
//
// Triples are deduplicated set-wise (the source is the union of all
// dereferenced documents), while provenance (which document contributed a
// triple first) is retained for link extraction and diagnostics.
type Store struct {
	mu   sync.Mutex
	cond *sync.Cond

	triples []rdf.Triple
	sources []rdf.Term // sources[i] is the document triples[i] came from
	seen    map[rdf.Triple]int

	bySubject   map[rdf.Term][]int
	byPredicate map[rdf.Term][]int
	byObject    map[rdf.Term][]int

	closed    bool
	documents map[string]bool // document IRIs ingested
}

// New returns an empty open store.
func New() *Store {
	s := &Store{
		seen:        make(map[rdf.Triple]int),
		bySubject:   make(map[rdf.Term][]int),
		byPredicate: make(map[rdf.Term][]int),
		byObject:    make(map[rdf.Term][]int),
		documents:   make(map[string]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Add inserts one triple attributed to the given source document. It
// reports whether the triple was new. Adding to a closed store is a no-op
// returning false.
func (s *Store) Add(t rdf.Triple, source rdf.Term) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if _, dup := s.seen[t]; dup {
		return false
	}
	i := len(s.triples)
	s.seen[t] = i
	s.triples = append(s.triples, t)
	s.sources = append(s.sources, source)
	s.bySubject[t.S] = append(s.bySubject[t.S], i)
	s.byPredicate[t.P] = append(s.byPredicate[t.P], i)
	s.byObject[t.O] = append(s.byObject[t.O], i)
	s.cond.Broadcast()
	return true
}

// AddDocument ingests all triples of a dereferenced document and reports
// how many were new. It also records the document IRI.
func (s *Store) AddDocument(docIRI string, triples []rdf.Triple) int {
	src := rdf.NewIRI(docIRI)
	n := 0
	for _, t := range triples {
		if s.Add(t, src) {
			n++
		}
	}
	s.mu.Lock()
	s.documents[docIRI] = true
	s.mu.Unlock()
	return n
}

// Close marks the store complete: no further triples will arrive. All
// blocked iterators drain their remaining matches and then terminate.
// Close is idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
}

// Closed reports whether the store has been closed.
func (s *Store) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Len returns the number of distinct triples currently in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.triples)
}

// DocumentCount returns the number of documents ingested so far.
func (s *Store) DocumentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.documents)
}

// Source returns the document a ground triple was first contributed by.
func (s *Store) Source(t rdf.Triple) (rdf.Term, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.seen[t]; ok {
		return s.sources[i], true
	}
	return rdf.Term{}, false
}

// candidateList returns the index list to scan for a pattern, choosing the
// most selective available index, and whether the list is complete at the
// time of the call. The caller holds s.mu.
func (s *Store) candidates(pattern rdf.Triple) []int {
	switch {
	case pattern.S.Kind != rdf.TermVar && pattern.S.Kind != rdf.TermUndef:
		return s.bySubject[pattern.S]
	case pattern.O.Kind != rdf.TermVar && pattern.O.Kind != rdf.TermUndef:
		return s.byObject[pattern.O]
	case pattern.P.Kind != rdf.TermVar && pattern.P.Kind != rdf.TermUndef:
		return s.byPredicate[pattern.P]
	default:
		return nil // full scan
	}
}

// fullScan reports whether the pattern has no constant position.
func fullScan(pattern rdf.Triple) bool {
	isVar := func(t rdf.Term) bool { return t.Kind == rdf.TermVar || t.Kind == rdf.TermUndef }
	return isVar(pattern.S) && isVar(pattern.P) && isVar(pattern.O)
}

// MatchNow returns a snapshot of all current matches of the pattern.
func (s *Store) MatchNow(pattern rdf.Triple) []rdf.Triple {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []rdf.Triple
	if fullScan(pattern) {
		for _, t := range s.triples {
			if pattern.Matches(t) {
				out = append(out, t)
			}
		}
		return out
	}
	for _, i := range s.candidates(pattern) {
		if pattern.Matches(s.triples[i]) {
			out = append(out, s.triples[i])
		}
	}
	return out
}

// CountNow returns the number of current matches of the pattern. It is used
// by cardinality-estimating planners and tests.
func (s *Store) CountNow(pattern rdf.Triple) int {
	return len(s.MatchNow(pattern))
}

// Match returns a live iterator over current and future matches of the
// pattern. The iterator terminates once the store is closed and all matches
// are drained, or when the iterator itself is closed.
func (s *Store) Match(pattern rdf.Triple) *Iterator {
	return &Iterator{store: s, pattern: pattern, scan: fullScan(pattern)}
}

// Iterator is a live triple-pattern iterator. It is not safe for concurrent
// use by multiple goroutines; each pipeline operator owns its iterators.
type Iterator struct {
	store   *Store
	pattern rdf.Triple
	// next is the cursor: an index into the candidate list (or the triples
	// slice for full scans) of the next entry to examine.
	next   int
	scan   bool
	closed bool
	mu     sync.Mutex
}

// Next blocks until a new matching triple is available and returns it, or
// returns ok=false when the store closed (and matches are exhausted), the
// iterator was closed, or the context was cancelled.
func (it *Iterator) Next(ctx context.Context) (rdf.Triple, bool) {
	s := it.store

	// Wake the wait loop when the context is cancelled. We register a
	// broadcast goroutine lazily per Next call only when we actually need
	// to block, to keep the fast path allocation-free.
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if it.isClosed() || ctx.Err() != nil {
			return rdf.Triple{}, false
		}
		if t, ok := it.scanLocked(); ok {
			return t, true
		}
		if s.closed {
			return rdf.Triple{}, false
		}
		// Block until new triples arrive or the store closes. A helper
		// goroutine turns context cancellation into a broadcast.
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stop:
			}
		}()
		s.cond.Wait()
		close(stop)
	}
}

// TryNext returns the next available match without blocking.
func (it *Iterator) TryNext() (rdf.Triple, bool) {
	it.store.mu.Lock()
	defer it.store.mu.Unlock()
	if it.isClosed() {
		return rdf.Triple{}, false
	}
	return it.scanLocked()
}

// Done reports whether the iterator can produce no further results without
// blocking AND the store is closed — i.e. the stream has truly ended.
func (it *Iterator) Done() bool {
	it.store.mu.Lock()
	defer it.store.mu.Unlock()
	if it.isClosed() {
		return true
	}
	if !it.store.closed {
		return false
	}
	// Peek: are there unscanned matches left?
	save := it.next
	_, ok := it.scanLocked()
	it.next = save
	return !ok
}

// scanLocked advances the cursor to the next match. Caller holds store.mu.
func (it *Iterator) scanLocked() (rdf.Triple, bool) {
	s := it.store
	if it.scan {
		for it.next < len(s.triples) {
			t := s.triples[it.next]
			it.next++
			if it.pattern.Matches(t) {
				return t, true
			}
		}
		return rdf.Triple{}, false
	}
	list := s.candidates(it.pattern)
	for it.next < len(list) {
		t := s.triples[list[it.next]]
		it.next++
		if it.pattern.Matches(t) {
			return t, true
		}
	}
	return rdf.Triple{}, false
}

// Close releases the iterator; pending and future Next calls return false.
func (it *Iterator) Close() {
	it.mu.Lock()
	it.closed = true
	it.mu.Unlock()
	it.store.mu.Lock()
	it.store.cond.Broadcast()
	it.store.mu.Unlock()
}

func (it *Iterator) isClosed() bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.closed
}

// Snapshot returns a copy of all triples currently in the store, in
// insertion order. Used by blocking operators and the centralized baseline.
func (s *Store) Snapshot() []rdf.Triple {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]rdf.Triple, len(s.triples))
	copy(out, s.triples)
	return out
}

// WaitClosed blocks until the store is closed or the context is cancelled.
// Blocking operators (ORDER BY, OPTIONAL, aggregation) use it to gate their
// final emission on traversal quiescence.
func (s *Store) WaitClosed(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stop:
			}
		}()
		s.cond.Wait()
		close(stop)
	}
	return nil
}

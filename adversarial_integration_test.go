package ltqp_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/faultinject"
	"ltqp/internal/podserver"
	"ltqp/internal/simenv"
	"ltqp/internal/solid"
	"ltqp/internal/solidbench"
)

// The adversarial suite drives the engine against hostile pods serving the
// attack classes of the LTQP security analysis — link bombs, traversal
// loops, cross-origin spoofing, slow-loris and oversized documents — and
// asserts each one is contained by the traversal defenses: bounded fetches,
// a typed trip in the degradation report (or a typed error in strict mode),
// and an unaffected benign sibling query.

const seeAlsoQuery = `SELECT ?o WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#seeAlso> ?o }`

// hostileServer mounts an adversary on a live origin with request counting.
func hostileServer(t *testing.T, adv *faultinject.Adversary) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		adv.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &requests
}

func drain(t *testing.T, res *ltqp.Result) int {
	t.Helper()
	n := 0
	for range res.Results {
		n++
	}
	return n
}

func hasTrip(deg ltqp.Degradation, kind string) bool {
	for _, trip := range deg.LimitTrips {
		if trip.Kind == kind {
			return true
		}
	}
	return false
}

func TestAdversarialLinkBombContained(t *testing.T) {
	adv := faultinject.NewAdversary(7)
	adv.Fanout, adv.Depth = 12, 3 // 1885 documents if followed blindly
	srv, requests := hostileServer(t, adv)

	engine := ltqp.New(ltqp.Config{
		Client:  srv.Client(),
		Lenient: true,
		Limits: ltqp.TraversalLimits{
			MaxLinksPerDoc: 4,
			MaxQueuedLinks: 40,
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{adv.BombRoot(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	if err := res.Err(); err != nil {
		t.Fatalf("lenient bomb traversal must not fail: %v", err)
	}
	if got := requests.Load(); got > 45 {
		t.Errorf("bomb drew %d fetches; fanout/queue caps should hold it near 41", got)
	}
	deg := res.Degradation()
	if !hasTrip(deg, "fanout") {
		t.Errorf("degradation misses the fanout trip: %+v", deg.LimitTrips)
	}
	if !deg.Degraded() {
		t.Error("a tripped limit must mark the result degraded")
	}
}

func TestAdversarialLinkBombStrictTypedError(t *testing.T) {
	adv := faultinject.NewAdversary(7)
	srv, _ := hostileServer(t, adv)

	engine := ltqp.New(ltqp.Config{
		Client: srv.Client(),
		Limits: ltqp.TraversalLimits{MaxLinksPerDoc: 3},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{adv.BombRoot(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	var limitErr *ltqp.TraversalLimitError
	if !errors.As(res.Err(), &limitErr) {
		t.Fatalf("strict mode should fail with *TraversalLimitError, got %v", res.Err())
	}
	if limitErr.Trip.Kind != "fanout" {
		t.Errorf("trip kind = %q, want fanout", limitErr.Trip.Kind)
	}
}

func TestAdversarialPerOriginBudget(t *testing.T) {
	adv := faultinject.NewAdversary(3)
	adv.Fanout, adv.Depth = 8, 4
	srv, requests := hostileServer(t, adv)

	engine := ltqp.New(ltqp.Config{
		Client:  srv.Client(),
		Lenient: true,
		Limits:  ltqp.TraversalLimits{MaxDocsPerOrigin: 6},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{adv.BombRoot(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	if err := res.Err(); err != nil {
		t.Fatalf("lenient budget traversal must not fail: %v", err)
	}
	if got := requests.Load(); got > 6 {
		t.Errorf("origin served %d fetches over a budget of 6", got)
	}
	if !hasTrip(res.Degradation(), "max-docs-per-origin") {
		t.Errorf("degradation misses the per-origin trip: %+v", res.Degradation().LimitTrips)
	}
}

// A traversal loop spelled through scheme/host-case and default-port URL
// aliases must terminate through normalized dedup alone — no limits set.
func TestAdversarialLoopTerminates(t *testing.T) {
	adv := faultinject.NewAdversary(11)
	srv, requests := hostileServer(t, adv)

	engine := ltqp.New(ltqp.Config{Client: srv.Client(), Lenient: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{adv.LoopRoot(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	n := drain(t, res)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// The ring has LoopLen documents; every alias re-fetch would show up as
	// an extra request. The port-variant aliases (host:PORT vs host) only
	// collapse for default ports, which httptest does not use — so the
	// uppercase-host aliases are the ones dedup must kill here.
	if got := requests.Load(); got > int64(adv.LoopLen+2) {
		t.Errorf("loop of %d drew %d fetches; aliases must deduplicate", adv.LoopLen, got)
	}
	if n == 0 {
		t.Error("loop documents carry seeAlso triples; expected results")
	}
}

// Cross-origin spoofing: a hostile pod asserting triples about a victim
// origin and linking into it. Scoped to its seeds, the traversal must never
// touch the victim.
func TestAdversarialSpoofScopeContained(t *testing.T) {
	victim := podserver.New()
	victim.AddDocument("http://victim.invalid/profile/card",
		"<http://victim.invalid/profile/card#me> <http://xmlns.com/foaf/0.1/name> \"Real Name\" .",
		solid.Access{Public: true})
	vsrv := httptest.NewServer(victim)
	t.Cleanup(vsrv.Close)

	adv := faultinject.NewAdversary(5)
	adv.SpoofTarget = vsrv.URL
	srv, _ := hostileServer(t, adv)

	engine := ltqp.New(ltqp.Config{
		Client:  srv.Client(),
		Lenient: true,
		Limits:  ltqp.TraversalLimits{ScopeToSeeds: true},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{adv.SpoofRoot(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := victim.RequestCount(); got != 0 {
		t.Errorf("victim origin received %d requests; scope should have pruned them all", got)
	}
	if !hasTrip(res.Degradation(), "scope") {
		t.Errorf("degradation misses the scope trip: %+v", res.Degradation().LimitTrips)
	}
}

func TestAdversarialSlowLorisCutOff(t *testing.T) {
	adv := faultinject.NewAdversary(13)
	adv.TrickleDelay = 25 * time.Millisecond
	adv.TrickleBytes = 400 // ~10s if read to completion
	srv, _ := hostileServer(t, adv)

	engine := ltqp.New(ltqp.Config{
		Client:  srv.Client(),
		Lenient: true,
		Limits:  ltqp.TraversalLimits{BodyTimeout: 250 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{adv.SlowRoot(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	if err := res.Err(); err != nil {
		t.Fatalf("lenient slow-loris traversal must not fail: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("slow-loris held the query for %v; cutoff should bound it near 250ms", elapsed)
	}
	if !hasTrip(res.Degradation(), "slow-body") {
		t.Errorf("degradation misses the slow-body trip: %+v", res.Degradation().LimitTrips)
	}
}

func TestAdversarialOversizeRejected(t *testing.T) {
	adv := faultinject.NewAdversary(17)
	adv.OversizeBytes = 256 << 10
	srv, _ := hostileServer(t, adv)

	engine := ltqp.New(ltqp.Config{
		Client:  srv.Client(),
		Lenient: true,
		Limits:  ltqp.TraversalLimits{MaxDocBytes: 4096},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{adv.BigRoot(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, res)
	if err := res.Err(); err != nil {
		t.Fatalf("lenient oversize traversal must not fail: %v", err)
	}
	if !hasTrip(res.Degradation(), "doc-bytes") {
		t.Errorf("degradation misses the doc-bytes trip: %+v", res.Degradation().LimitTrips)
	}
}

// The defenses must not perturb benign traffic: the same Discover query,
// with and without every defense armed (and a hostile fallback mounted on
// the pod origin), returns identical result counts.
func TestAdversarialBenignSiblingUnaffected(t *testing.T) {
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	baselineEngine := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true})
	res, err := baselineEngine.Query(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	baseline := drain(t, res)
	if res.Err() != nil {
		t.Fatal(res.Err())
	}
	if baseline == 0 {
		t.Fatal("baseline Discover found nothing")
	}

	// Mount the adversary on the same origin — benign documents never link
	// into /adv/, so traversal must not touch it.
	adv := faultinject.NewAdversary(23)
	env.PodServer.Fallback = adv

	guardedEngine := ltqp.New(ltqp.Config{
		Client:  env.Client(),
		Lenient: true,
		Limits: ltqp.TraversalLimits{
			MaxDocsPerOrigin:     10_000,
			MaxInFlightPerOrigin: 4,
			MaxLinksPerDoc:       500,
			MaxQueuedLinks:       10_000,
			ScopeToSeeds:         true,
			MaxDocBytes:          8 << 20,
			BodyTimeout:          10 * time.Second,
		},
	})
	res, err = guardedEngine.Query(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	guarded := drain(t, res)
	if res.Err() != nil {
		t.Fatal(res.Err())
	}
	if guarded != baseline {
		t.Errorf("defenses changed a benign query: %d results with, %d without", guarded, baseline)
	}
	if deg := res.Degradation(); len(deg.LimitTrips) != 0 {
		t.Errorf("benign query tripped limits: %+v", deg.LimitTrips)
	}
}

// TestAdversarialDegradationReport runs every attack class once under a
// fully-defended lenient engine and — with LTQP_ADVERSARIAL_ARTIFACT set —
// writes the per-attack degradation report the CI adversarial-smoke job
// archives: which limits tripped, how many fetches the attacker extracted,
// and that the query still terminated cleanly.
func TestAdversarialDegradationReport(t *testing.T) {
	adv := faultinject.NewAdversary(42)
	adv.TrickleDelay = 25 * time.Millisecond
	adv.TrickleBytes = 400
	srv, requests := hostileServer(t, adv)

	limits := ltqp.TraversalLimits{
		MaxDocsPerOrigin: 25,
		MaxLinksPerDoc:   5,
		MaxQueuedLinks:   60,
		MaxDocBytes:      4096,
		BodyTimeout:      250 * time.Millisecond,
	}
	type attackReport struct {
		Attack   string           `json:"attack"`
		Requests int64            `json:"requests"`
		Results  int              `json:"results"`
		Trips    []ltqp.LimitTrip `json:"trips"`
	}
	var reports []attackReport
	for _, a := range []struct {
		name string
		seed string
	}{
		{"link-bomb", adv.BombRoot(srv.URL)},
		{"loop", adv.LoopRoot(srv.URL)},
		{"slow-loris", adv.SlowRoot(srv.URL)},
		{"oversize", adv.BigRoot(srv.URL)},
	} {
		requests.Store(0)
		engine := ltqp.New(ltqp.Config{Client: srv.Client(), Lenient: true, Limits: limits})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := engine.QueryWithSeeds(ctx, seeAlsoQuery, []string{a.seed})
		if err != nil {
			cancel()
			t.Fatalf("%s: %v", a.name, err)
		}
		n := drain(t, res)
		cancel()
		if err := res.Err(); err != nil {
			t.Fatalf("%s: defended lenient engine failed: %v", a.name, err)
		}
		reports = append(reports, attackReport{
			Attack:   a.name,
			Requests: requests.Load(),
			Results:  n,
			Trips:    res.Degradation().LimitTrips,
		})
	}
	for _, r := range reports {
		t.Logf("%-10s requests=%3d results=%3d trips=%d", r.Attack, r.Requests, r.Results, len(r.Trips))
		if r.Attack != "loop" && len(r.Trips) == 0 {
			t.Errorf("%s: no limit tripped under attack", r.Attack)
		}
	}
	if path := os.Getenv("LTQP_ADVERSARIAL_ARTIFACT"); path != "" {
		out, err := json.MarshalIndent(map[string]interface{}{
			"limits":  limits,
			"attacks": reports,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}

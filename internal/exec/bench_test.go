package exec

import (
	"context"
	"fmt"
	"testing"

	"ltqp/internal/algebra"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// benchStore builds a closed store with a star-join-friendly shape.
func benchStore(n int) *store.Store {
	s := store.New()
	doc := rdf.NewIRI("http://example.org/doc")
	for i := 0; i < n; i++ {
		msg := rdf.NewIRI(fmt.Sprintf("http://example.org/m%d", i))
		creator := rdf.NewIRI(fmt.Sprintf("http://example.org/u%d", i%20))
		s.Add(rdf.NewTriple(msg, rdf.NewIRI("http://v/hasCreator"), creator), doc)
		s.Add(rdf.NewTriple(msg, rdf.NewIRI("http://v/content"), rdf.NewLiteral(fmt.Sprintf("content %d", i))), doc)
		s.Add(rdf.NewTriple(msg, rdf.NewIRI("http://v/id"), rdf.Long(int64(i))), doc)
	}
	s.Close()
	return s
}

func benchPlan(b *testing.B, query string) algebra.Operator {
	b.Helper()
	q, err := sparql.ParseQuery(query)
	if err != nil {
		b.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		b.Fatal(err)
	}
	return plan.New(nil).Optimize(op)
}

func BenchmarkStarJoinPipeline(b *testing.B) {
	s := benchStore(2000)
	op := benchPlan(b, `
SELECT ?m ?c ?id WHERE {
  ?m <http://v/hasCreator> <http://example.org/u3> .
  ?m <http://v/content> ?c .
  ?m <http://v/id> ?id .
}`)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range Eval(ctx, op, NewEnv(s)) {
			n++
		}
		if n != 100 {
			b.Fatalf("results = %d", n)
		}
	}
}

func BenchmarkDistinctPipeline(b *testing.B) {
	s := benchStore(2000)
	op := benchPlan(b, `
SELECT DISTINCT ?creator WHERE {
  ?m <http://v/hasCreator> ?creator .
}`)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range Eval(ctx, op, NewEnv(s)) {
			n++
		}
		if n != 20 {
			b.Fatalf("results = %d", n)
		}
	}
}

func BenchmarkAggregationPipeline(b *testing.B) {
	s := benchStore(2000)
	op := benchPlan(b, `
SELECT ?creator (COUNT(?m) AS ?n) WHERE {
  ?m <http://v/hasCreator> ?creator .
} GROUP BY ?creator`)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range Eval(ctx, op, NewEnv(s)) {
			n++
		}
		if n != 20 {
			b.Fatalf("groups = %d", n)
		}
	}
}

func BenchmarkFilterRegexPipeline(b *testing.B) {
	s := benchStore(2000)
	op := benchPlan(b, `
SELECT ?m WHERE {
  ?m <http://v/content> ?c .
  FILTER(REGEX(?c, "content 1[0-9]$"))
}`)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range Eval(ctx, op, NewEnv(s)) {
			n++
		}
		if n != 10 {
			b.Fatalf("results = %d", n)
		}
	}
}

func BenchmarkExpressionEval(b *testing.B) {
	q, err := sparql.ParseQuery(`SELECT ?x WHERE { ?x ?p ?o FILTER(STRLEN(STR(?o)) * 2 + 1 > 10 && CONTAINS(STR(?o), "en")) }`)
	if err != nil {
		b.Fatal(err)
	}
	var expr sparql.Expression
	for _, e := range q.Where.Elements {
		if f, ok := e.(sparql.FilterPattern); ok {
			expr = f.Expr
		}
	}
	env := NewEnv(store.New())
	binding := rdf.Binding{"o": rdf.NewLiteral("some content here")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evalExpr(env, expr, binding); err != nil {
			b.Fatal(err)
		}
	}
}

package rdf

import (
	"net/url"
	"strings"
)

// ResolveIRI resolves a possibly-relative IRI reference against a base IRI,
// per RFC 3986. It is used by the Turtle parser (relative IRIs in documents
// resolve against the document URL) and by the pod builder. If resolution
// fails or base is empty, ref is returned unchanged.
func ResolveIRI(base, ref string) string {
	if ref == "" {
		return base
	}
	if base == "" || isAbsoluteIRI(ref) {
		return ref
	}
	b, err := url.Parse(base)
	if err != nil {
		return ref
	}
	r, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return b.ResolveReference(r).String()
}

// isAbsoluteIRI reports whether s has a scheme component.
func isAbsoluteIRI(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ':':
			return i > 0
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
			// scheme chars
		case i > 0 && (c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.'):
			// scheme chars after first
		default:
			return false
		}
	}
	return false
}

// DocumentIRI returns the document URL for a term: the IRI with fragment and
// query stripped for IRIs, and "" for every other kind. Traversal operates
// on documents; this maps data-level IRIs (e.g. ...profile/card#me) to the
// dereferenceable documents that describe them.
func DocumentIRI(t Term) string {
	if t.Kind != TermIRI {
		return ""
	}
	iri := t.Value
	if i := strings.IndexByte(iri, '#'); i >= 0 {
		iri = iri[:i]
	}
	return iri
}

// SameDocument reports whether two IRIs refer to the same document
// (equal after stripping fragments).
func SameDocument(a, b string) bool {
	strip := func(s string) string {
		if i := strings.IndexByte(s, '#'); i >= 0 {
			return s[:i]
		}
		return s
	}
	return strip(a) == strip(b)
}

// IsHTTPIRI reports whether the IRI uses the http or https scheme, i.e. is
// dereferenceable by the engine.
func IsHTTPIRI(iri string) bool {
	return strings.HasPrefix(iri, "http://") || strings.HasPrefix(iri, "https://")
}

// Package solid models Solid personal data pods: hierarchies of RDF
// documents exposed over HTTP, described by LDP containers (paper Listing
// 1), discovered through WebID profile documents (Listing 2), and indexed
// by Solid Type Indexes (Listing 3). The pod builder produces exactly these
// structures for the simulated environment, and document-level access
// control reproduces Solid's permissioned nature.
package solid

import (
	"fmt"
	"sort"
	"strings"

	"ltqp/internal/rdf"
	"ltqp/internal/turtle"
)

// Access describes who may read a document.
type Access struct {
	// Public documents are readable by everyone (the default).
	Public bool
	// Agents lists WebIDs with read access to a private document.
	Agents []string
}

// PublicAccess is the default access rule.
var PublicAccess = Access{Public: true}

// Document is one RDF document in a pod.
type Document struct {
	// Path is pod-relative ("profile/card", "posts/2010-10-01", ...).
	Path string
	// Graph holds the document's triples.
	Graph *rdf.Graph
	// Access controls who can read the document.
	Access Access
}

// Pod is one Solid personal data pod.
type Pod struct {
	// Base is the pod root URL, ending in a slash
	// (e.g. "https://host/pods/0123/").
	Base string
	// Documents maps pod-relative paths to documents. Container documents
	// (paths ending in "/" plus the root "") are synthesized by
	// Materialize and must not be added manually.
	Documents map[string]*Document
}

// NewPod returns an empty pod rooted at base (a trailing slash is added if
// missing).
func NewPod(base string) *Pod {
	if !strings.HasSuffix(base, "/") {
		base += "/"
	}
	return &Pod{Base: base, Documents: map[string]*Document{}}
}

// WebID returns the pod owner's WebID: <base>profile/card#me.
func (p *Pod) WebID() string { return p.Base + "profile/card#me" }

// ProfileDocument returns the URL of the WebID profile document.
func (p *Pod) ProfileDocument() string { return p.Base + "profile/card" }

// TypeIndexDocument returns the URL of the public type index.
func (p *Pod) TypeIndexDocument() string { return p.Base + "settings/publicTypeIndex" }

// IRI returns an absolute IRI for a pod-relative path.
func (p *Pod) IRI(path string) string { return p.Base + path }

// Add inserts a public document with the given triples.
func (p *Pod) Add(path string, g *rdf.Graph) *Document {
	d := &Document{Path: path, Graph: g, Access: PublicAccess}
	p.Documents[path] = d
	return d
}

// AddPrivate inserts a document readable only by the listed agents.
func (p *Pod) AddPrivate(path string, g *rdf.Graph, agents ...string) *Document {
	d := &Document{Path: path, Graph: g, Access: Access{Agents: agents}}
	p.Documents[path] = d
	return d
}

// TypeRegistration is one entry of the public type index.
type TypeRegistration struct {
	// Class is the RDF class IRI the registration is for.
	Class string
	// Instance, when set, is a pod-relative path to a document holding
	// instances.
	Instance string
	// InstanceContainer, when set, is a pod-relative container path
	// ("posts/") whose members hold instances.
	InstanceContainer string
}

// ProfileInfo carries the personal data of a WebID profile.
type ProfileInfo struct {
	Name        string
	OIDCIssuer  string
	KnowsWebIDs []string
}

// BuildProfile creates the WebID profile document (paper Listing 2),
// linking to the pod root (pim:storage) and the public type index.
func (p *Pod) BuildProfile(info ProfileInfo) *Document {
	g := rdf.NewGraph()
	me := rdf.NewIRI(p.WebID())
	g.Add(rdf.NewTriple(rdf.NewIRI(p.ProfileDocument()), rdf.NewIRI(rdf.FOAFPrimaryTopic), me))
	g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.FOAFPerson)))
	if info.Name != "" {
		g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.FOAFName), rdf.NewLiteral(info.Name)))
	}
	g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.PIMStorage), rdf.NewIRI(p.Base)))
	issuer := info.OIDCIssuer
	if issuer == "" {
		issuer = "https://idp.invalid/"
	}
	g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.SolidOIDCIssuer), rdf.NewIRI(issuer)))
	g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.SolidPublicTypeIndex), rdf.NewIRI(p.TypeIndexDocument())))
	for _, w := range info.KnowsWebIDs {
		g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.FOAFKnows), rdf.NewIRI(w)))
	}
	return p.Add("profile/card", g)
}

// BuildTypeIndex creates the public type index document (paper Listing 3).
func (p *Pod) BuildTypeIndex(regs []TypeRegistration) *Document {
	g := rdf.NewGraph()
	doc := rdf.NewIRI(p.TypeIndexDocument())
	g.Add(rdf.NewTriple(doc, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.SolidTypeIndex)))
	g.Add(rdf.NewTriple(doc, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.SolidListedDocument)))
	for i, reg := range regs {
		node := rdf.NewIRI(fmt.Sprintf("%s#reg%d", p.TypeIndexDocument(), i))
		g.Add(rdf.NewTriple(node, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.SolidTypeRegistration)))
		g.Add(rdf.NewTriple(node, rdf.NewIRI(rdf.SolidForClass), rdf.NewIRI(reg.Class)))
		if reg.Instance != "" {
			g.Add(rdf.NewTriple(node, rdf.NewIRI(rdf.SolidInstance), rdf.NewIRI(p.IRI(reg.Instance))))
		}
		if reg.InstanceContainer != "" {
			g.Add(rdf.NewTriple(node, rdf.NewIRI(rdf.SolidInstanceContainer), rdf.NewIRI(p.IRI(reg.InstanceContainer))))
		}
	}
	return p.Add("settings/publicTypeIndex", g)
}

// Materialize synthesizes the LDP container documents for every directory
// implied by the document paths (paper Listing 1) and returns the complete
// path→document map, containers included. Containers inherit public
// access.
func (p *Pod) Materialize() map[string]*Document {
	out := make(map[string]*Document, len(p.Documents)+8)
	for path, d := range p.Documents {
		out[path] = d
	}
	// children maps a container path ("" for root, "posts/") to member
	// paths.
	children := map[string]map[string]bool{"": {}}
	addChild := func(dir, child string) {
		if children[dir] == nil {
			children[dir] = map[string]bool{}
		}
		children[dir][child] = true
	}
	for path := range p.Documents {
		// Walk up the directory chain: "posts/2010-10-01" contributes
		// member "posts/2010-10-01" to "posts/" and "posts/" to "".
		cur := path
		for {
			i := strings.LastIndex(strings.TrimSuffix(cur, "/"), "/")
			if i < 0 {
				addChild("", cur)
				break
			}
			dir := cur[:i+1]
			addChild(dir, cur)
			cur = dir
		}
	}
	for dir, members := range children {
		g := rdf.NewGraph()
		self := rdf.NewIRI(p.IRI(dir))
		for _, class := range []string{rdf.LDPContainer, rdf.LDPBasicContainer, rdf.LDPResource} {
			g.Add(rdf.NewTriple(self, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(class)))
		}
		sorted := make([]string, 0, len(members))
		for m := range members {
			sorted = append(sorted, m)
		}
		sort.Strings(sorted)
		for _, m := range sorted {
			g.Add(rdf.NewTriple(self, rdf.NewIRI(rdf.LDPContains), rdf.NewIRI(p.IRI(m))))
			if strings.HasSuffix(m, "/") {
				child := rdf.NewIRI(p.IRI(m))
				for _, class := range []string{rdf.LDPContainer, rdf.LDPBasicContainer, rdf.LDPResource} {
					g.Add(rdf.NewTriple(child, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(class)))
				}
			} else {
				g.Add(rdf.NewTriple(rdf.NewIRI(p.IRI(m)), rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.LDPResource)))
			}
		}
		out[dir] = &Document{Path: dir, Graph: g, Access: PublicAccess}
	}
	return out
}

// Turtle serializes a document of this pod as Turtle with the document URL
// as base.
func (p *Pod) Turtle(d *Document) string {
	return turtle.Write(d.Graph.Triples(), turtle.WriteOptions{
		Base:     p.IRI(d.Path),
		Prefixes: rdf.CommonPrefixes,
	})
}

// TripleCount sums the data triples across the pod's explicit documents
// (containers excluded).
func (p *Pod) TripleCount() int {
	n := 0
	for _, d := range p.Documents {
		n += d.Graph.Len()
	}
	return n
}

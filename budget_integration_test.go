package ltqp_test

// Budget integration tests: a query whose traversal balloons past
// Config.MemBudget must fail with a typed *ltqp.BudgetExceededError whose
// breakdown attributes the spend per layer — while sibling queries on the
// same engine, untouched by the pressure, complete normally. Memory
// pressure is injected with the faultinject Bloat rule, which pads one
// pod's documents with thousands of synthetic (but valid) triples.

import (
	"context"
	"errors"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/faultinject"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// measurePeak runs a query with accounting on and returns its peak bytes.
func measurePeak(t *testing.T, engine *ltqp.Engine, query string) int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := engine.Query(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	for range res.Results {
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	snap := res.Resources()
	if snap == nil {
		t.Fatal("accounting enabled but Resources() returned nil")
	}
	if snap.Peak <= 0 {
		t.Fatalf("peak = %d, want > 0", snap.Peak)
	}
	return snap.Peak
}

// TestBudgetExceededIsolatesSiblings bloats one person's pod so a query
// against it blows through the memory budget, and runs a second query
// against a different pod concurrently on the same engine. The pressured
// query must fail with a typed error carrying the full ledger breakdown;
// the sibling must complete with results, unaffected.
func TestBudgetExceededIsolatesSiblings(t *testing.T) {
	cfg := solidbench.SmallConfig()
	env := simenv.New(cfg)
	defer env.Close()
	qa := env.Dataset.Discover(1, 1)
	qb := env.Dataset.Discover(1, 2)
	if qa.Person == qb.Person {
		t.Fatal("variants resolve to the same person; test proves nothing")
	}

	// Calibrate the budget from fault-free peaks: generous headroom over
	// either clean query, far below what the bloated run will attempt.
	base := ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, Obs: ltqp.NewObserver()})
	budget := measurePeak(t, base, qa.Text)
	if p := measurePeak(t, base, qb.Text); p > budget {
		budget = p
	}
	budget *= 2

	inj := faultinject.New(7, faultinject.Rule{
		Pattern:      env.Dataset.PodBase(qa.Person),
		Probability:  1,
		Kind:         faultinject.Bloat,
		BloatTriples: 16384,
	})
	engine := ltqp.New(ltqp.Config{
		Client:    inj.Client(env.Client()),
		Lenient:   true,
		MemBudget: budget,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Sibling query: different pod, no bloat, must finish under budget.
	sibling := make(chan error, 1)
	go func() {
		res, err := engine.Query(ctx, qb.Text)
		if err != nil {
			sibling <- err
			return
		}
		n := 0
		for range res.Results {
			n++
		}
		if err := res.Err(); err != nil {
			sibling <- err
			return
		}
		if n == 0 {
			sibling <- errors.New("sibling query returned no results")
			return
		}
		sibling <- nil
	}()

	// Pressured query: same engine, bloated pod, must hit the budget.
	res, err := engine.Query(ctx, qa.Text)
	if err != nil {
		t.Fatal(err)
	}
	for range res.Results {
	}
	qerr := res.Err()
	if qerr == nil {
		t.Fatalf("bloated query completed under budget %d; injector faulted %d requests", budget, inj.FaultCount())
	}
	var be *ltqp.BudgetExceededError
	if !errors.As(qerr, &be) {
		t.Fatalf("error = %v (%T), want *ltqp.BudgetExceededError", qerr, qerr)
	}
	if be.Budget != budget {
		t.Errorf("BudgetExceededError.Budget = %d, want %d", be.Budget, budget)
	}
	if be.Attempted <= budget {
		t.Errorf("Attempted = %d, want > budget %d", be.Attempted, budget)
	}
	if be.Breakdown == nil {
		t.Fatal("BudgetExceededError.Breakdown is nil")
	}
	if !be.Breakdown.Exceeded {
		t.Error("Breakdown.Exceeded = false, want true")
	}
	if be.Breakdown.TopLayer == "" {
		t.Error("Breakdown.TopLayer is empty; the breakdown names no dominant layer")
	}
	if len(be.Breakdown.Layers) == 0 {
		t.Error("Breakdown has no per-layer usage")
	}
	if inj.FaultCount() == 0 {
		t.Error("no bloat injected; the budget was exceeded without pressure")
	}
	// The final snapshot agrees with the typed error about the failure.
	if snap := res.Resources(); snap == nil {
		t.Error("Resources() = nil after a budget failure")
	} else if !snap.Exceeded {
		t.Error("final snapshot does not mark the budget as exceeded")
	}

	if err := <-sibling; err != nil {
		t.Errorf("sibling query on the same engine failed: %v", err)
	}
}

// TestBudgetUnderLimitCompletes sets a generous budget and asserts the
// same bloat-free query completes with accounting attached — enforcement
// must not penalize queries that stay inside their allowance.
func TestBudgetUnderLimitCompletes(t *testing.T) {
	cfg := solidbench.SmallConfig()
	env := simenv.New(cfg)
	defer env.Close()
	q := env.Dataset.Discover(1, 1)

	engine := ltqp.New(ltqp.Config{
		Client:    env.Client(),
		Lenient:   true,
		MemBudget: 1 << 30, // 1 GiB: far above any SmallConfig query
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range res.Results {
		n++
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("query under budget returned no results")
	}
	snap := res.Resources()
	if snap == nil {
		t.Fatal("MemBudget set but Resources() returned nil")
	}
	if snap.Exceeded {
		t.Error("snapshot marks a comfortably-under-budget query as exceeded")
	}
	if snap.Budget != 1<<30 {
		t.Errorf("snapshot budget = %d, want %d", snap.Budget, int64(1)<<30)
	}
	if snap.Peak <= 0 || snap.TopLayer == "" {
		t.Errorf("snapshot not populated: peak %d, top layer %q", snap.Peak, snap.TopLayer)
	}
}

// Package timeline renders rows of timed operations as an ASCII waterfall
// on a shared time axis — the browser-network-tab view of the paper's
// Figs. 4 and 5. It is the one renderer behind internal/metrics' request
// waterfall, the /debug/traces ASCII view, and critical-path chains, so
// the three views stay visually identical.
package timeline

import (
	"fmt"
	"strings"
	"time"
)

// Row is one bar on the chart.
type Row struct {
	// Label is the left column (a URL, span name, ...); shortened from the
	// left to fit, keeping the tail.
	Label string
	// Status is the short status column ("200", "ERR", "cache").
	Status string
	// Bytes is the size column.
	Bytes int64
	// Start and End position the bar, as offsets from any common origin;
	// the chart re-bases on the earliest Start.
	Start, End time.Duration
	// Note is free text printed after the bar (discovery reason, retry
	// annotation).
	Note string
	// Mark highlights the row: its bar is drawn with '#' instead of '='.
	// Used to flag critical-path rows inside a full waterfall.
	Mark bool
}

// Options control chart geometry.
type Options struct {
	// Width is the bar area in columns (default 60, minimum 20).
	Width int
	// LabelWidth is the label column width (default 44).
	LabelWidth int
	// NoHeader suppresses the column-header line.
	NoHeader bool
}

// Render draws the rows in the order given. Returns "" for no rows.
func Render(rows []Row, o Options) string {
	if len(rows) == 0 {
		return ""
	}
	width := o.Width
	if width == 0 {
		width = 60
	}
	if width < 20 {
		width = 20
	}
	labelWidth := o.LabelWidth
	if labelWidth <= 0 {
		labelWidth = 44
	}
	min := rows[0].Start
	max := rows[0].End
	for _, r := range rows {
		if r.Start < min {
			min = r.Start
		}
		if r.End > max {
			max = r.End
		}
	}
	total := max - min
	if total <= 0 {
		total = time.Millisecond
	}
	scale := func(t time.Duration) int {
		off := int(int64(t-min) * int64(width) / int64(total))
		if off >= width {
			off = width - 1
		}
		if off < 0 {
			off = 0
		}
		return off
	}
	var b strings.Builder
	if !o.NoHeader {
		fmt.Fprintf(&b, "%-*s %6s %8s %7s  %s\n", labelWidth, "document", "status", "bytes", "ms", "timeline")
	}
	for _, r := range rows {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		fill := byte('=')
		if r.Mark {
			fill = '#'
		}
		s, e := scale(r.Start), scale(r.End)
		if e < s {
			e = s
		}
		for i := s; i <= e && i < width; i++ {
			bar[i] = fill
		}
		bar[s] = '|'
		fmt.Fprintf(&b, "%-*s %6s %8d %7.1f  [%s] %s\n",
			labelWidth, Shorten(r.Label, labelWidth), r.Status, r.Bytes,
			float64((r.End-r.Start).Microseconds())/1000.0, string(bar), r.Note)
	}
	return b.String()
}

// Shorten abbreviates long labels for display, keeping the tail.
func Shorten(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return "…" + s[len(s)-max+1:]
}

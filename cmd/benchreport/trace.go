package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"ltqp/internal/metrics"
	"ltqp/internal/obs"
)

// renderTraces renders critical-path latency attribution from either a
// trace export (the JSON served by /debug/traces/<id>, or written by the
// trace-smoke harness) or an engine event journal (JSONL from
// `ltqp-sparql --journal`). Journals hold every query of a run, so the
// topN slowest are reported, each with the dereference chains that gated
// its first result and its total traversal time.
func renderTraces(path string, topN, width int, out io.Writer) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	// A journal is JSONL with a versioned header line; a trace export is a
	// single JSON document. Try the journal reader first — it rejects
	// non-journals at the header — then fall back to the export shapes.
	if summary, err := obs.ReadJournal(bytes.NewReader(data)); err == nil {
		return renderJournalTraces(summary, topN, width, out)
	}
	var rec obs.TraceRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("not a journal and not a trace export: %w", err)
	}
	if rec.TraceID == "" {
		return fmt.Errorf("trace export has no trace_id (expected /debug/traces/<id> JSON)")
	}
	fmt.Fprint(out, obs.RenderTraceWaterfall(&rec, width))
	return nil
}

// renderJournalTraces reconstructs each journaled query's dereference DAG
// (parents from the recorded Via links) and prints the topN slowest
// queries' critical paths.
func renderJournalTraces(summary *obs.JournalSummary, topN, width int, out io.Writer) error {
	queries := append([]*obs.QueryReplay(nil), summary.Queries...)
	sort.SliceStable(queries, func(i, j int) bool { return queries[i].Duration > queries[j].Duration })
	if topN > 0 && len(queries) > topN {
		fmt.Fprintf(out, "%d queries in journal; showing the %d slowest\n\n", len(queries), topN)
		queries = queries[:topN]
	}
	for _, q := range queries {
		reqs := make([]metrics.Request, 0, len(q.Docs))
		for _, d := range q.Docs {
			reqs = append(reqs, metrics.Request{
				URL:    d.URL,
				Parent: d.Via,
				Start:  d.End.Add(-d.Duration),
				End:    d.End,
				Status: d.Status,
				Bytes:  d.Bytes,
				Err:    d.Err,
			})
		}
		fmt.Fprintf(out, "== query %d — %d results in %.1fms, %d documents ==\n%s\n",
			q.ID, q.Results, float64(q.Duration.Microseconds())/1000, len(q.Docs), q.Query)
		if len(reqs) == 0 {
			fmt.Fprintln(out, "(no dereferences recorded)")
			continue
		}
		var resultTimes []time.Duration
		if q.HasTTFR {
			resultTimes = []time.Duration{q.TTFR}
		}
		cp := obs.ComputeCritPath(reqs, q.Start, resultTimes, nil)
		fmt.Fprint(out, cp.Render(width))
		fmt.Fprintln(out)
	}
	return nil
}

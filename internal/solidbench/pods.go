package solidbench

import (
	"fmt"
	"sort"
	"strings"

	"ltqp/internal/rdf"
	"ltqp/internal/solid"
)

// Vocab builds the host-scoped IRIs of the SolidBench deployment: like the
// original benchmark, the SNB vocabulary, tags, and places are republished
// under the benchmark host so that every IRI in the environment is
// dereferenceable (or at least resolvable) on the same origin.
type Vocab struct {
	Host string
}

// NewVocab returns the vocabulary for a host origin (no trailing slash).
func NewVocab(host string) Vocab { return Vocab{Host: strings.TrimSuffix(host, "/")} }

// NS returns the vocabulary namespace.
func (v Vocab) NS() string { return v.Host + "/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/" }

// P returns a vocabulary predicate/class IRI term.
func (v Vocab) P(name string) rdf.Term { return rdf.NewIRI(v.NS() + name) }

// Tag returns a tag IRI.
func (v Vocab) Tag(name string) rdf.Term {
	return rdf.NewIRI(v.Host + "/www.ldbc.eu/ldbc_socialnet/1.0/tag/" + name)
}

// Place returns a place (city/country) IRI.
func (v Vocab) Place(name string) rdf.Term {
	return rdf.NewIRI(v.Host + "/dbpedia.org/resource/" + strings.ReplaceAll(name, " ", "_"))
}

// PodBase returns the base URL of a person's pod.
func (d *Dataset) PodBase(person int) string {
	return fmt.Sprintf("%s/pods/%s/", strings.TrimSuffix(d.Config.Host, "/"), d.Persons[person].PodID())
}

// WebID returns the WebID of a person.
func (d *Dataset) WebID(person int) string { return d.PodBase(person) + "profile/card#me" }

// PostIRI returns the IRI of a post (a fragment of its creator's
// date-fragmented post document).
func (d *Dataset) PostIRI(post int) string {
	p := d.Posts[post]
	return fmt.Sprintf("%sposts/%s#%d", d.PodBase(p.Creator), p.Creation.Format("2006-01-02"), p.ID)
}

// CommentIRI returns the IRI of a comment.
func (d *Dataset) CommentIRI(comment int) string {
	c := d.Comments[comment]
	return fmt.Sprintf("%scomments/%s#%d", d.PodBase(c.Creator), c.Creation.Format("2006-01-02"), c.ID)
}

// ForumIRI returns the IRI of a forum (hosted in the moderator's pod).
func (d *Dataset) ForumIRI(forum int) string {
	f := d.Forums[forum]
	return fmt.Sprintf("%sforums/%d#forum", d.PodBase(f.Moderator), f.ID)
}

// BuildPods fragments the dataset into Solid pods, one per person,
// following SolidBench's default fragmentation:
//
//	profile/card                WebID profile (Listing 2) + SNB person data
//	settings/publicTypeIndex    type index (Listing 3)
//	posts/<yyyy-mm-dd>          posts by creation day
//	comments/<yyyy-mm-dd>       comments by creation day
//	likes/<yyyy-mm-dd>          likes by day
//	forums/<id>                 forums moderated by the owner
//	noise/noise-<k>             query-irrelevant documents
func (d *Dataset) BuildPods() []*solid.Pod {
	v := NewVocab(d.Config.Host)
	r := newRNG(d.Config.Seed + 7)
	pods := make([]*solid.Pod, len(d.Persons))

	// Index entities by owner once: building each pod must not rescan the
	// whole dataset, or fragmentation becomes quadratic in persons.
	idx := ownerIndex{
		posts:    make([][]int, len(d.Persons)),
		comments: make([][]int, len(d.Persons)),
		likes:    make([][]int, len(d.Persons)),
		forums:   make([][]int, len(d.Persons)),
	}
	for pi, p := range d.Posts {
		idx.posts[p.Creator] = append(idx.posts[p.Creator], pi)
	}
	for ci, c := range d.Comments {
		idx.comments[c.Creator] = append(idx.comments[c.Creator], ci)
	}
	for li, l := range d.Likes {
		idx.likes[l.Person] = append(idx.likes[l.Person], li)
	}
	for fi, f := range d.Forums {
		idx.forums[f.Moderator] = append(idx.forums[f.Moderator], fi)
	}

	for i := range d.Persons {
		pods[i] = d.buildPod(i, v, r, idx)
	}
	return pods
}

// ownerIndex maps person index → indexes of their entities.
type ownerIndex struct {
	posts, comments, likes, forums [][]int
}

func (d *Dataset) buildPod(i int, v Vocab, r *rng, idx ownerIndex) *solid.Pod {
	p := d.Persons[i]
	pod := solid.NewPod(d.PodBase(i))
	me := rdf.NewIRI(d.WebID(i))

	// Profile: WebID discovery triples plus the SNB person attributes.
	friends := make([]string, 0, len(p.Friends))
	for _, f := range p.Friends {
		friends = append(friends, d.WebID(f))
	}
	profile := pod.BuildProfile(solid.ProfileInfo{
		Name:        p.FirstName + " " + p.LastName,
		OIDCIssuer:  d.Config.Host + "/idp/",
		KnowsWebIDs: friends,
	})
	g := profile.Graph
	g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.RDFType), v.P("Person")))
	g.Add(rdf.NewTriple(me, v.P("id"), rdf.Long(p.ID)))
	g.Add(rdf.NewTriple(me, v.P("firstName"), rdf.NewLiteral(p.FirstName)))
	g.Add(rdf.NewTriple(me, v.P("lastName"), rdf.NewLiteral(p.LastName)))
	g.Add(rdf.NewTriple(me, v.P("gender"), rdf.NewLiteral(p.Gender)))
	g.Add(rdf.NewTriple(me, v.P("birthday"), rdf.Date(p.Birthday)))
	g.Add(rdf.NewTriple(me, v.P("browserUsed"), rdf.NewLiteral(p.Browser)))
	g.Add(rdf.NewTriple(me, v.P("locationIP"), rdf.NewLiteral(p.IP)))
	g.Add(rdf.NewTriple(me, v.P("isLocatedIn"), v.Place(p.City)))
	g.Add(rdf.NewTriple(me, v.P("creationDate"), rdf.DateTime(p.Creation)))
	for _, lang := range p.Languages {
		g.Add(rdf.NewTriple(me, v.P("speaks"), rdf.NewLiteral(lang)))
	}
	for _, f := range p.Friends {
		g.Add(rdf.NewTriple(me, v.P("knows"), rdf.NewIRI(d.WebID(f))))
	}

	// Type index: the structural entry points of the pod.
	pod.BuildTypeIndex([]solid.TypeRegistration{
		{Class: v.NS() + "Post", InstanceContainer: "posts/"},
		{Class: v.NS() + "Comment", InstanceContainer: "comments/"},
		{Class: v.NS() + "Forum", InstanceContainer: "forums/"},
	})

	// Posts, grouped by creation day.
	postDocs := map[string]*rdf.Graph{}
	for _, pi := range idx.posts[i] {
		post := d.Posts[pi]
		day := post.Creation.Format("2006-01-02")
		g := postDocs[day]
		if g == nil {
			g = rdf.NewGraph()
			postDocs[day] = g
		}
		s := rdf.NewIRI(d.PostIRI(pi))
		g.Add(rdf.NewTriple(s, rdf.NewIRI(rdf.RDFType), v.P("Post")))
		g.Add(rdf.NewTriple(s, v.P("id"), rdf.Long(post.ID)))
		g.Add(rdf.NewTriple(s, v.P("hasCreator"), me))
		g.Add(rdf.NewTriple(s, v.P("creationDate"), rdf.DateTime(post.Creation)))
		if post.Image != "" {
			g.Add(rdf.NewTriple(s, v.P("imageFile"), rdf.NewLiteral(post.Image)))
		} else {
			g.Add(rdf.NewTriple(s, v.P("content"), rdf.NewLiteral(post.Content)))
		}
		g.Add(rdf.NewTriple(s, v.P("browserUsed"), rdf.NewLiteral(post.Browser)))
		g.Add(rdf.NewTriple(s, v.P("locationIP"), rdf.NewLiteral(post.IP)))
		g.Add(rdf.NewTriple(s, v.P("isLocatedIn"), v.Place(post.Country)))
		for _, tag := range post.Tags {
			g.Add(rdf.NewTriple(s, v.P("hasTag"), v.Tag(tag)))
		}
	}
	// Deterministic ACL assignment requires a stable iteration order (Go
	// map ranges are randomized).
	private := d.Config.PrivateFraction > 0
	days := make([]string, 0, len(postDocs))
	for day := range postDocs {
		days = append(days, day)
	}
	sort.Strings(days)
	for _, day := range days {
		path := "posts/" + day
		if private && float64(r.intn(1000))/1000.0 < d.Config.PrivateFraction {
			agents := append([]string{d.WebID(i)}, friends...)
			pod.AddPrivate(path, postDocs[day], agents...)
		} else {
			pod.Add(path, postDocs[day])
		}
	}

	// Comments, grouped by creation day.
	commentDocs := map[string]*rdf.Graph{}
	for _, ci := range idx.comments[i] {
		c := d.Comments[ci]
		day := c.Creation.Format("2006-01-02")
		g := commentDocs[day]
		if g == nil {
			g = rdf.NewGraph()
			commentDocs[day] = g
		}
		s := rdf.NewIRI(d.CommentIRI(ci))
		g.Add(rdf.NewTriple(s, rdf.NewIRI(rdf.RDFType), v.P("Comment")))
		g.Add(rdf.NewTriple(s, v.P("id"), rdf.Long(c.ID)))
		g.Add(rdf.NewTriple(s, v.P("hasCreator"), me))
		g.Add(rdf.NewTriple(s, v.P("creationDate"), rdf.DateTime(c.Creation)))
		g.Add(rdf.NewTriple(s, v.P("content"), rdf.NewLiteral(c.Content)))
		g.Add(rdf.NewTriple(s, v.P("replyOf"), rdf.NewIRI(d.PostIRI(c.ReplyOf))))
		g.Add(rdf.NewTriple(s, v.P("browserUsed"), rdf.NewLiteral(c.Browser)))
		g.Add(rdf.NewTriple(s, v.P("isLocatedIn"), v.Place(c.Country)))
	}
	for day, g := range commentDocs {
		pod.Add("comments/"+day, g)
	}

	// Likes, grouped by day: <me> snvoc:likes [ snvoc:hasPost <post> ].
	likeDocs := map[string]*rdf.Graph{}
	likeN := 0
	for _, li := range idx.likes[i] {
		like := d.Likes[li]
		day := like.Creation.Format("2006-01-02")
		g := likeDocs[day]
		if g == nil {
			g = rdf.NewGraph()
			likeDocs[day] = g
		}
		likeN++
		node := rdf.NewBlank(fmt.Sprintf("like%d", likeN))
		g.Add(rdf.NewTriple(me, v.P("likes"), node))
		if like.Post >= 0 {
			g.Add(rdf.NewTriple(node, v.P("hasPost"), rdf.NewIRI(d.PostIRI(like.Post))))
		} else {
			g.Add(rdf.NewTriple(node, v.P("hasComment"), rdf.NewIRI(d.CommentIRI(like.Comment))))
		}
		g.Add(rdf.NewTriple(node, v.P("creationDate"), rdf.DateTime(like.Creation)))
	}
	for day, g := range likeDocs {
		pod.Add("likes/"+day, g)
	}

	// Forums moderated by this person.
	for _, fi := range idx.forums[i] {
		f := d.Forums[fi]
		g := rdf.NewGraph()
		s := rdf.NewIRI(d.ForumIRI(fi))
		g.Add(rdf.NewTriple(s, rdf.NewIRI(rdf.RDFType), v.P("Forum")))
		g.Add(rdf.NewTriple(s, v.P("id"), rdf.Long(f.ID)))
		g.Add(rdf.NewTriple(s, v.P("title"), rdf.NewLiteral(f.Title)))
		g.Add(rdf.NewTriple(s, v.P("hasModerator"), me))
		for _, pi := range f.Posts {
			g.Add(rdf.NewTriple(s, v.P("containerOf"), rdf.NewIRI(d.PostIRI(pi))))
		}
		pod.Add(fmt.Sprintf("forums/%d", f.ID), g)
	}

	// Noise documents: plausible but query-irrelevant data (settings,
	// bookkeeping), as visible in the paper's Fig. 4 waterfall.
	for k := 0; k < d.Config.NoiseFilesPerPod; k++ {
		g := rdf.NewGraph()
		s := rdf.NewIRI(pod.IRI(fmt.Sprintf("noise/noise-%d#it", k)))
		g.Add(rdf.NewTriple(s, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(d.Config.Host+"/vocab/Noise")))
		for t := 0; t < 3+r.intn(5); t++ {
			g.Add(rdf.NewTriple(s, rdf.NewIRI(fmt.Sprintf("%s/vocab/noise%d", d.Config.Host, t)),
				rdf.NewLiteral(sentence(r, 4))))
		}
		pod.Add(fmt.Sprintf("noise/noise-%d", k), g)
	}

	return pod
}

// Stats summarizes a generated environment the way the paper reports its
// deployment (§4.2): pod count, RDF file count, triple count.
type Stats struct {
	Pods      int
	Files     int // data documents, containers excluded
	Documents int // served documents including containers
	Triples   int
}

// ComputeStats materializes all pods and counts documents and triples.
func ComputeStats(pods []*solid.Pod) Stats {
	s := Stats{Pods: len(pods)}
	for _, p := range pods {
		all := p.Materialize()
		s.Documents += len(all)
		for path, doc := range all {
			if path == "" || strings.HasSuffix(path, "/") {
				continue // container
			}
			s.Files++
			s.Triples += doc.Graph.Len()
		}
	}
	return s
}

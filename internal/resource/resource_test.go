package resource

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLedgerStress hammers one ledger from 64 goroutines charging and
// releasing across deref/store/exec concurrently (run under -race by `make
// verify`). At drain it asserts charge/release balance (live bytes return
// to zero), exact cumulative charge totals, and high-water sanity: peaks
// are at least the largest single live claim and never exceed the
// cumulative charge.
func TestLedgerStress(t *testing.T) {
	const (
		goroutines = 64
		iters      = 500
	)
	l := New(1, "tenant-a", 0)
	cats := []Category{Deref, Store, Exec}

	var wg sync.WaitGroup
	var wantCharged [NumCategories]atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cat := cats[(g+i)%len(cats)]
				n := int64(64 + (g*31+i*7)%4096)
				l.Charge(cat, n)
				wantCharged[cat].Add(n)
				if peak := l.PeakBy(cat); peak < n {
					t.Errorf("peak[%s]=%d below a live charge of %d", cat, peak, n)
				}
				l.Release(cat, n)
			}
		}(g)
	}
	wg.Wait()

	if got := l.Current(); got != 0 {
		t.Errorf("live bytes after drain = %d, want 0 (charge/release imbalance)", got)
	}
	var total int64
	for _, cat := range cats {
		want := wantCharged[cat].Load()
		total += want
		if got := l.ChargedBy(cat); got != want {
			t.Errorf("charged[%s] = %d, want %d", cat, got, want)
		}
		if got := l.CurrentBy(cat); got != 0 {
			t.Errorf("current[%s] = %d after drain, want 0", cat, got)
		}
		if peak := l.PeakBy(cat); peak <= 0 || peak > want {
			t.Errorf("peak[%s] = %d, want in (0, %d]", cat, peak, want)
		}
	}
	if got := l.Charged(); got != total {
		t.Errorf("Charged() = %d, want %d", got, total)
	}
	if p := l.Peak(); p <= 0 || p > total {
		t.Errorf("Peak() = %d, want in (0, %d]", p, total)
	}
	if l.Exceeded() {
		t.Error("Exceeded() = true with no budget configured")
	}
}

// TestPeakMonotonic interleaves charges and releases on one goroutine and
// checks the high-water mark never decreases.
func TestPeakMonotonic(t *testing.T) {
	l := New(2, "", 0)
	prev := int64(0)
	for i := 0; i < 100; i++ {
		l.Charge(Exec, int64(100+i))
		if p := l.Peak(); p < prev {
			t.Fatalf("peak decreased: %d -> %d", prev, p)
		} else {
			prev = p
		}
		l.Release(Exec, int64(100+i))
		if p := l.Peak(); p != prev {
			t.Fatalf("release moved the peak: %d -> %d", prev, p)
		}
	}
	if l.Current() != 0 {
		t.Fatalf("current = %d, want 0", l.Current())
	}
}

// TestBudgetExceededOnce races 32 goroutines over a tiny budget and
// asserts the callback latches exactly once, with a typed error carrying
// the per-layer breakdown.
func TestBudgetExceededOnce(t *testing.T) {
	l := New(7, "tenant-b", 1<<10)
	var fired atomic.Int64
	var gotErr atomic.Pointer[BudgetExceededError]
	l.OnExceeded(func(e *BudgetExceededError) {
		fired.Add(1)
		gotErr.Store(e)
	})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Charge(Store, 64)
			}
		}()
	}
	wg.Wait()
	if n := fired.Load(); n != 1 {
		t.Fatalf("OnExceeded fired %d times, want exactly 1", n)
	}
	if !l.Exceeded() {
		t.Fatal("Exceeded() = false after budget crossing")
	}
	e := gotErr.Load()
	if e == nil || e.Budget != 1<<10 || e.Attempted <= e.Budget {
		t.Fatalf("bad error: %+v", e)
	}
	if e.Breakdown == nil || e.Breakdown.QueryID != 7 || e.Breakdown.Tenant != "tenant-b" {
		t.Fatalf("breakdown missing identity: %+v", e.Breakdown)
	}
	if e.Breakdown.TopLayer != "store" {
		t.Errorf("TopLayer = %q, want store", e.Breakdown.TopLayer)
	}
	var bx *BudgetExceededError
	if err := error(e); !errors.As(err, &bx) {
		t.Error("errors.As failed to match *BudgetExceededError")
	}
	msg := e.Error()
	for _, want := range []string{"memory budget exceeded", "store"} {
		if !contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestNilLedger checks every method is a safe no-op on nil.
func TestNilLedger(t *testing.T) {
	var l *Ledger
	l.Charge(Deref, 100)
	l.Release(Deref, 100)
	l.OnExceeded(func(*BudgetExceededError) {})
	if l.Current() != 0 || l.Peak() != 0 || l.Charged() != 0 || l.Exceeded() {
		t.Error("nil ledger reported nonzero usage")
	}
	if l.Snapshot() != nil {
		t.Error("nil ledger snapshot != nil")
	}
	if l.Tenant() != "" || l.QueryID() != 0 || l.Budget() != 0 {
		t.Error("nil ledger reported identity")
	}
	var tl *TenantLedger
	tl.Record(l)
	if tl.Snapshot() != nil || tl.MaxPeak() != 0 {
		t.Error("nil tenant ledger reported usage")
	}
}

// TestSnapshot checks the snapshot's layers, top-layer attribution, and
// JSON round-trip shape.
func TestSnapshot(t *testing.T) {
	l := New(42, "alice", 1<<20)
	l.Charge(Deref, 1000)
	l.Charge(Store, 5000)
	l.Charge(Exec, 200)
	l.Release(Exec, 200)
	s := l.Snapshot()
	if s.QueryID != 42 || s.Tenant != "alice" || s.Budget != 1<<20 {
		t.Fatalf("identity: %+v", s)
	}
	if s.TopLayer != "store" {
		t.Errorf("TopLayer = %q, want store", s.TopLayer)
	}
	if s.Current != 6000 || s.Charged != 6200 || s.Peak != 6200 {
		t.Errorf("totals: current=%d charged=%d peak=%d", s.Current, s.Charged, s.Peak)
	}
	if len(s.Layers) != 3 {
		t.Fatalf("layers = %d, want 3 (serve unused should be omitted)", len(s.Layers))
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TopLayer != "store" || len(back.Layers) != 3 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if bd := s.BreakdownString(); !contains(bd, "store") || !contains(bd, "deref") {
		t.Errorf("BreakdownString() = %q", bd)
	}
}

// TestTenantLedger checks rollups accumulate per tenant, sort by spend,
// and track the max single-query peak.
func TestTenantLedger(t *testing.T) {
	tl := NewTenantLedger()
	a1 := New(1, "a", 0)
	a1.Charge(Store, 1000)
	a2 := New(2, "a", 100)
	a2.OnExceeded(func(*BudgetExceededError) {})
	a2.Charge(Exec, 5000)
	b := New(3, "", 0)
	b.Charge(Deref, 300)
	for _, l := range []*Ledger{a1, a2, b} {
		tl.Record(l)
	}
	snap := tl.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("tenants = %d, want 2", len(snap))
	}
	if snap[0].Tenant != "a" || snap[0].Queries != 2 || snap[0].Charged != 6000 {
		t.Errorf("tenant a: %+v", snap[0])
	}
	if snap[0].Exceeded != 1 {
		t.Errorf("tenant a exceeded = %d, want 1", snap[0].Exceeded)
	}
	if snap[1].Tenant != "default" || snap[1].Charged != 300 {
		t.Errorf("default tenant: %+v", snap[1])
	}
	if got := tl.MaxPeak(); got != 5000 {
		t.Errorf("MaxPeak = %d, want 5000", got)
	}
}

// TestLedgerOffZeroAllocs enforces the acceptance criterion as a test, not
// just a benchmark: the nil-ledger hot path performs zero allocations.
func TestLedgerOffZeroAllocs(t *testing.T) {
	var l *Ledger
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		l.Charge(Exec, 4096)
		l.Release(Exec, 4096)
		if FromContext(ctx) != nil {
			t.Error("ledger on bare context")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-ledger hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		1536:    "1.5KiB",
		1 << 20: "1.0MiB",
		3 << 30: "3.0GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// BenchmarkLedgerOff measures the no-ledger hot path: a nil receiver
// charge/release pair plus a context lookup. Must report 0 allocs/op —
// this is the zero-overhead-when-off guarantee the engine relies on.
func BenchmarkLedgerOff(b *testing.B) {
	var l *Ledger
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Charge(Exec, 4096)
		l.Release(Exec, 4096)
		_ = FromContext(ctx)
	}
}

// BenchmarkLedgerOn measures the attached-ledger charge/release pair for
// contrast (atomic adds + CAS peak raise).
func BenchmarkLedgerOn(b *testing.B) {
	l := New(1, "bench", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Charge(Exec, 4096)
		l.Release(Exec, 4096)
	}
	if l.Current() != 0 {
		b.Fatal("imbalance")
	}
}

// BenchmarkLedgerOnParallel measures contended charging from all P's.
func BenchmarkLedgerOnParallel(b *testing.B) {
	l := New(1, "bench", 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Charge(Store, 64)
			l.Release(Store, 64)
		}
	})
}

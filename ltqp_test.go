package ltqp

import (
	"context"
	"strings"
	"testing"
	"time"

	"ltqp/internal/rdf"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func testEnv(t testing.TB) *simenv.Env {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	return env
}

func TestEngineSelectDiscover(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true})
	q := env.Dataset.Discover(6, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := engine.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, b := range results {
		if !b.Has("forumId") || !b.Has("forumTitle") {
			t.Errorf("incomplete binding %v", b)
		}
	}
}

func TestEngineStreamingAndClose(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true})
	q := env.Dataset.Discover(2, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	// Take one result, then abort.
	b, ok := <-res.Results
	if !ok {
		t.Fatal("no first result")
	}
	if b.Len() == 0 {
		t.Error("empty binding")
	}
	res.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-res.Results:
			if !ok {
				return // closed promptly
			}
		case <-deadline:
			t.Fatal("Results did not close after Close()")
		}
	}
}

func TestEngineStrategies(t *testing.T) {
	env := testEnv(t)
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, s := range []Strategy{StrategySolid, StrategySolidNoLDP, StrategyLDPOnly, StrategyCMatch} {
		t.Run(s.String(), func(t *testing.T) {
			engine := New(Config{Client: env.Client(), Lenient: true, Strategy: s})
			results, err := engine.Select(ctx, q.Text)
			if err != nil {
				t.Fatal(err)
			}
			if s != StrategyCMatch && len(results) == 0 {
				t.Errorf("strategy %s found no results", s)
			}
		})
	}
}

func TestStrategyCAllBounded(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true, Strategy: StrategyCAll, MaxDocuments: 50})
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	_, err := engine.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if n := engine.cfg.MaxDocuments; n != 50 {
		t.Errorf("MaxDocuments = %d", n)
	}
}

func TestPrioritizedQueue(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true, PrioritizedQueue: true})
	q := env.Dataset.Discover(1, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := engine.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("prioritized queue found no results")
	}
}

func TestBindingJSON(t *testing.T) {
	b := Binding{
		"forumId":    rdf.Long(755914244147),
		"forumTitle": rdf.NewLiteral("Album 11 of Eli Peretz"),
		"who":        rdf.NewIRI("https://pod.example/card#me"),
		"lang":       rdf.NewLangLiteral("hoi", "nl"),
	}
	s := BindingJSON(b)
	for _, want := range []string{
		`"forumId":"\"755914244147\"^^http://www.w3.org/2001/XMLSchema#long`,
		`"forumTitle":"\"Album 11 of Eli Peretz\""`,
		`"who":"https://pod.example/card#me"`,
		`"lang":"\"hoi\"@nl"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("BindingJSON = %s\nmissing %s", s, want)
		}
	}
}

func TestWaitWithTimeout(t *testing.T) {
	env := testEnv(t)
	env.PodServer.Latency = 2 * time.Millisecond
	engine := New(Config{Client: env.Client(), Lenient: true})
	q := env.Dataset.Discover(2, 1)
	res, err := engine.Query(context.Background(), q.Text)
	if err != nil {
		t.Fatal(err)
	}
	got := WaitWithTimeout(res, 30*time.Second)
	if len(got) == 0 {
		t.Error("WaitWithTimeout returned nothing")
	}
}

func TestPlanString(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true})
	q := env.Dataset.Discover(6, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := engine.Query(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	plan := res.PlanString()
	if !strings.Contains(plan, "pattern(") || !strings.Contains(plan, "distinct(") {
		t.Errorf("plan = %s", plan)
	}
	// Zero-knowledge planning: the seed-anchored hasCreator pattern (its
	// object is the seed WebID) must be the first (innermost-left) scan.
	firstPattern := plan[strings.Index(plan, "pattern("):]
	if !strings.Contains(firstPattern[:strings.Index(firstPattern, ")")+1], "hasCreator") {
		t.Errorf("seed-anchored pattern not scheduled first:\n%s", plan)
	}
	for range res.Results {
	}
}

func TestDefaultSeedsFromConfig(t *testing.T) {
	env := testEnv(t)
	q := env.Dataset.Discover(1, 1)
	seed := env.Dataset.PodBase(q.Person) + "profile/card"
	engine := New(Config{Client: env.Client(), Lenient: true, Seeds: []string{seed}})
	// A query that mentions no IRIs still runs, using the default seeds.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	vocab := solidbench.NewVocab(env.Dataset.Config.Host)
	results, err := engine.Select(ctx, `
PREFIX snvoc: <`+vocab.NS()+`>
SELECT ?m WHERE { ?m snvoc:hasCreator ?c } LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("no results via default seeds")
	}
}

func TestDocumentCacheAcrossQueries(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true, CacheDocuments: 1000})
	q := env.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// First run: all network.
	env.PodServer.ResetRequestCount()
	res1, err := engine.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	firstHits := env.PodServer.RequestCount()

	// Second run: served from the document cache.
	env.PodServer.ResetRequestCount()
	res2, err := engine.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	secondHits := env.PodServer.RequestCount()

	if len(res1) != len(res2) {
		t.Errorf("results differ across cached runs: %d vs %d", len(res1), len(res2))
	}
	if firstHits == 0 {
		t.Fatal("first run hit no server")
	}
	// Failed fetches (dead vocabulary IRIs) are not cached and retry;
	// everything that parsed must come from the cache.
	if secondHits > firstHits/5 {
		t.Errorf("second run still made %d network requests (first run: %d)", secondHits, firstHits)
	}
}

func TestCacheRespectsIdentity(t *testing.T) {
	// A document cached for one agent must not be served to another.
	env := testEnv(t)
	// Rebuild with private docs.
	_ = env
	cfg2 := solidbench.SmallConfig()
	cfg2.PrivateFraction = 0.99
	env2 := simenv.New(cfg2)
	t.Cleanup(env2.Close)
	q := env2.Dataset.Discover(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Owner warms the cache...
	owner := New(Config{Client: env2.Client(), Lenient: true, CacheDocuments: 1000,
		Auth: env2.CredentialsFor(q.Person)})
	ownerResults, err := owner.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	// ...but an anonymous engine with its own cache (caches are per
	// engine) and, more importantly, identity-scoped keys sees less.
	anon := New(Config{Client: env2.Client(), Lenient: true, CacheDocuments: 1000})
	anonResults, err := anon.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(anonResults) >= len(ownerResults) {
		t.Errorf("anon (%d) should see fewer results than owner (%d)", len(anonResults), len(ownerResults))
	}
}

func TestFacadeConstructAndDescribe(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	v := solidbench.NewVocab(env.Dataset.Config.Host)
	webID := env.Dataset.WebID(0)

	triples, err := engine.Construct(ctx, `PREFIX snvoc: <`+v.NS()+`>
CONSTRUCT { ?m snvoc:content ?c } WHERE { ?m snvoc:hasCreator <`+webID+`>; snvoc:content ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) == 0 {
		t.Error("no construct triples")
	}

	desc, err := engine.Describe(ctx, `DESCRIBE <`+webID+`>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) == 0 {
		t.Error("empty description")
	}

	ok, err := engine.Ask(ctx, `PREFIX snvoc: <`+v.NS()+`>
ASK { ?m snvoc:hasCreator <`+webID+`> }`)
	if err != nil || !ok {
		t.Errorf("ask = %v, %v", ok, err)
	}
}

func TestCommonPrefixesIsCopy(t *testing.T) {
	p := CommonPrefixes()
	if p["ldp"] == "" || p["snvoc"] == "" {
		t.Errorf("prefixes = %v", p)
	}
	p["ldp"] = "mutated"
	if CommonPrefixes()["ldp"] == "mutated" {
		t.Error("CommonPrefixes must return a copy")
	}
}

func TestAdaptiveViaFacade(t *testing.T) {
	env := testEnv(t)
	engine := New(Config{Client: env.Client(), Lenient: true, Adaptive: true})
	q := env.Dataset.Discover(6, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := engine.Select(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("adaptive facade run found nothing")
	}
}

func TestSortBindings(t *testing.T) {
	bs := []Binding{
		{"x": rdf.NewLiteral("b")},
		{"x": rdf.NewLiteral("a")},
	}
	SortBindings(bs, []string{"x"})
	if bs[0]["x"].Value != "a" {
		t.Errorf("sort order = %v", bs)
	}
}

package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("http://example.org/a"), TermIRI, "<http://example.org/a>"},
		{"simple literal", NewLiteral("hello"), TermLiteral, `"hello"`},
		{"typed literal", NewTypedLiteral("42", XSDInteger), TermLiteral, `"42"^^<` + XSDInteger + `>`},
		{"lang literal", NewLangLiteral("bonjour", "FR"), TermLiteral, `"bonjour"@fr`},
		{"blank", NewBlank("b0"), TermBlank, "_:b0"},
		{"var", NewVar("x"), TermVar, "?x"},
		{"integer", Integer(7), TermLiteral, `"7"^^<` + XSDInteger + `>`},
		{"boolean", Boolean(true), TermLiteral, `"true"^^<` + XSDBoolean + `>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind != c.kind {
				t.Errorf("kind = %v, want %v", c.term.Kind, c.kind)
			}
			if got := c.term.String(); got != c.str {
				t.Errorf("String() = %q, want %q", got, c.str)
			}
		})
	}
}

func TestXSDStringNormalization(t *testing.T) {
	// An explicit xsd:string datatype must normalize to the simple literal
	// representation so that term equality works across parsers.
	a := NewTypedLiteral("x", XSDString)
	b := NewLiteral("x")
	if a != b {
		t.Errorf("NewTypedLiteral(x, xsd:string) = %v, want %v", a, b)
	}
}

func TestTermStringEscapes(t *testing.T) {
	lit := NewLiteral("line1\nline2\t\"quoted\"\\end")
	want := `"line1\nline2\t\"quoted\"\\end"`
	if got := lit.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDatatypeIRI(t *testing.T) {
	if got := NewLiteral("x").DatatypeIRI(); got != XSDString {
		t.Errorf("simple literal datatype = %q, want xsd:string", got)
	}
	if got := NewLangLiteral("x", "en").DatatypeIRI(); got != RDFLangString {
		t.Errorf("lang literal datatype = %q, want rdf:langString", got)
	}
	if got := NewTypedLiteral("1", XSDInteger).DatatypeIRI(); got != XSDInteger {
		t.Errorf("typed literal datatype = %q, want xsd:integer", got)
	}
	if got := NewIRI("http://x").DatatypeIRI(); got != "" {
		t.Errorf("IRI datatype = %q, want empty", got)
	}
}

func TestTermCompareTotalOrder(t *testing.T) {
	terms := []Term{
		{}, // undef
		NewBlank("a"),
		NewBlank("b"),
		NewIRI("http://a"),
		NewIRI("http://b"),
		NewLiteral("a"),
		NewLiteral("b"),
		NewVar("v"),
	}
	for i := range terms {
		for j := range terms {
			c := terms[i].Compare(terms[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", terms[i], terms[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", terms[i], terms[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", terms[i], terms[j], c)
			}
		}
	}
}

func TestTermCompareProperties(t *testing.T) {
	// Antisymmetry and consistency with equality, property-based.
	f := func(a, b Term) bool {
		ca, cb := a.Compare(b), b.Compare(a)
		if a == b {
			return ca == 0 && cb == 0
		}
		return (ca < 0) == (cb > 0)
	}
	cfg := &quick.Config{Values: randomTermPair}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNumericValues(t *testing.T) {
	if v, err := Integer(42).Int(); err != nil || v != 42 {
		t.Errorf("Int() = %d, %v", v, err)
	}
	if v, err := Double(2.5).Float(); err != nil || v != 2.5 {
		t.Errorf("Float() = %g, %v", v, err)
	}
	if v, err := NewTypedLiteral("3.0", XSDDecimal).Int(); err != nil || v != 3 {
		t.Errorf("Int(3.0) = %d, %v", v, err)
	}
	if _, err := NewLiteral("abc").Int(); err == nil {
		t.Error("Int(abc) should fail")
	}
	if v, err := Boolean(true).Bool(); err != nil || !v {
		t.Errorf("Bool() = %v, %v", v, err)
	}
	if !Long(5).IsNumeric() || !Long(5).IsIntegral() {
		t.Error("xsd:long should be numeric and integral")
	}
	if Double(1).IsIntegral() {
		t.Error("xsd:double should not be integral")
	}
}

func TestTimeValues(t *testing.T) {
	lit := NewTypedLiteral("2010-10-12T08:30:00.000Z", XSDDateTime)
	v, err := lit.Time()
	if err != nil {
		t.Fatalf("Time() error: %v", err)
	}
	if v.Year() != 2010 || v.Month() != 10 || v.Day() != 12 {
		t.Errorf("Time() = %v", v)
	}
	d := NewTypedLiteral("1984-02-29", XSDDate)
	if _, err := d.Time(); err != nil {
		t.Errorf("date parse error: %v", err)
	}
	rt, err := DateTime(v).Time()
	if err != nil || !rt.Equal(v) {
		t.Errorf("DateTime round trip = %v, %v", rt, err)
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	cases := []struct {
		term Term
		want bool
		err  bool
	}{
		{Boolean(true), true, false},
		{Boolean(false), false, false},
		{Integer(0), false, false},
		{Integer(3), true, false},
		{Double(0), false, false},
		{NewLiteral(""), false, false},
		{NewLiteral("x"), true, false},
		{NewLangLiteral("x", "en"), true, false},
		{NewIRI("http://x"), false, true},
		{NewTypedLiteral("bogus", XSDBoolean), false, false},
	}
	for _, c := range cases {
		got, err := c.term.EffectiveBooleanValue()
		if (err != nil) != c.err {
			t.Errorf("EBV(%v) err = %v, want err=%v", c.term, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("EBV(%v) = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestResolveIRI(t *testing.T) {
	base := "https://pods.example/alice/profile/card"
	cases := []struct{ ref, want string }{
		{"", base},
		{"#me", "https://pods.example/alice/profile/card#me"},
		{"card2", "https://pods.example/alice/profile/card2"},
		{"../posts/", "https://pods.example/alice/posts/"},
		{"/root.ttl", "https://pods.example/root.ttl"},
		{"http://other.example/x", "http://other.example/x"},
		{"//cdn.example/y", "https://cdn.example/y"},
	}
	for _, c := range cases {
		if got := ResolveIRI(base, c.ref); got != c.want {
			t.Errorf("ResolveIRI(%q, %q) = %q, want %q", base, c.ref, got, c.want)
		}
	}
	if got := ResolveIRI("", "rel"); got != "rel" {
		t.Errorf("empty base: got %q", got)
	}
}

func TestDocumentIRIAndSameDocument(t *testing.T) {
	if got := DocumentIRI(NewIRI("https://p.example/card#me")); got != "https://p.example/card" {
		t.Errorf("DocumentIRI = %q", got)
	}
	if got := DocumentIRI(NewLiteral("x")); got != "" {
		t.Errorf("DocumentIRI(literal) = %q, want empty", got)
	}
	if !SameDocument("https://p.example/card#me", "https://p.example/card#key") {
		t.Error("fragments of one document should be the same document")
	}
	if SameDocument("https://p.example/a", "https://p.example/b") {
		t.Error("different paths are different documents")
	}
}

func TestIsHTTPIRI(t *testing.T) {
	if !IsHTTPIRI("http://x") || !IsHTTPIRI("https://x") {
		t.Error("http(s) IRIs should be dereferenceable")
	}
	if IsHTTPIRI("mailto:a@b") || IsHTTPIRI("urn:uuid:1") {
		t.Error("non-http IRIs should not be dereferenceable")
	}
}

func TestStripFragment(t *testing.T) {
	if got := StripFragment(NewIRI("http://x/a#b")); got != NewIRI("http://x/a") {
		t.Errorf("StripFragment = %v", got)
	}
	lit := NewLiteral("a#b")
	if got := StripFragment(lit); got != lit {
		t.Errorf("StripFragment(literal) modified the term: %v", got)
	}
}

func TestFormatFloat(t *testing.T) {
	if s := formatFloat(1); !strings.Contains(s, ".") {
		t.Errorf("formatFloat(1) = %q, want a decimal point", s)
	}
	if s := formatFloat(1e21); !strings.ContainsAny(s, "eE") {
		t.Errorf("formatFloat(1e21) = %q, want exponent form", s)
	}
}

package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"ltqp/internal/algebra"
	"ltqp/internal/plan"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
)

// TestPlannerPreservesSemantics is the key property of the zero-knowledge
// planner: reordering join chains must never change the result multiset.
// Random small graphs and random chain-shaped BGP queries are evaluated
// with the naive (textual-order) plan and the optimized plan; the result
// sets must agree.
func TestPlannerPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))

		// Random data: a small graph over a handful of nodes/predicates.
		st := store.New()
		nodes := []string{"a", "b", "c", "d", "e"}
		preds := []string{"p", "q", "r"}
		doc := rdf.NewIRI("http://d")
		for i := 0; i < 40; i++ {
			st.Add(rdf.NewTriple(
				rdf.NewIRI("http://n/"+nodes[r.Intn(len(nodes))]),
				rdf.NewIRI("http://p/"+preds[r.Intn(len(preds))]),
				rdf.NewIRI("http://n/"+nodes[r.Intn(len(nodes))]),
			), doc)
		}
		st.Close()

		// Random BGP: 2-4 patterns over variables x0..x3 and constants.
		terms := func() rdf.Term {
			if r.Intn(2) == 0 {
				return rdf.NewVar(fmt.Sprintf("x%d", r.Intn(4)))
			}
			return rdf.NewIRI("http://n/" + nodes[r.Intn(len(nodes))])
		}
		n := 2 + r.Intn(3)
		query := "SELECT * WHERE {"
		for i := 0; i < n; i++ {
			s, o := terms(), terms()
			p := "http://p/" + preds[r.Intn(len(preds))]
			query += fmt.Sprintf(" %s <%s> %s .", s, p, o)
		}
		query += " }"

		q, err := sparql.ParseQuery(query)
		if err != nil {
			t.Fatalf("generated query does not parse: %v\n%s", err, query)
		}
		naive, err := algebra.Translate(q)
		if err != nil {
			t.Fatalf("translate: %v", err)
		}
		optimized := plan.New(nil).Optimize(naive)

		run := func(op algebra.Operator) []string {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			env := NewEnv(st)
			var keys []string
			vars := op.Vars()
			for b := range Eval(ctx, op, env) {
				keys = append(keys, b.Key(vars))
			}
			sort.Strings(keys)
			return keys
		}
		a, b := run(naive), run(optimized)
		if len(a) != len(b) {
			t.Logf("mismatch for %s: naive=%d optimized=%d", query, len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("mismatch for %s at %d", query, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestJoinCommutative checks the symmetric hash join gives identical
// multisets regardless of operand order.
func TestJoinCommutative(t *testing.T) {
	st := store.New()
	doc := rdf.NewIRI("http://d")
	for i := 0; i < 10; i++ {
		st.Add(rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://s%d", i%4)),
			rdf.NewIRI("http://p"),
			rdf.NewIRI(fmt.Sprintf("http://o%d", i)),
		), doc)
		st.Add(rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://o%d", i)),
			rdf.NewIRI("http://q"),
			rdf.NewIRI("http://z"),
		), doc)
	}
	st.Close()

	l := algebra.Pattern{Triple: rdf.NewTriple(rdf.NewVar("a"), rdf.NewIRI("http://p"), rdf.NewVar("b"))}
	r := algebra.Pattern{Triple: rdf.NewTriple(rdf.NewVar("b"), rdf.NewIRI("http://q"), rdf.NewVar("c"))}

	run := func(op algebra.Operator) []string {
		env := NewEnv(st)
		var keys []string
		for b := range Eval(context.Background(), op, env) {
			keys = append(keys, b.Key([]string{"a", "b", "c"}))
		}
		sort.Strings(keys)
		return keys
	}
	ab := run(algebra.Join{Left: l, Right: r})
	ba := run(algebra.Join{Left: r, Right: l})
	if len(ab) != len(ba) || len(ab) != 10 {
		t.Fatalf("join sizes: %d vs %d", len(ab), len(ba))
	}
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("join not commutative at %d", i)
		}
	}
}

package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: ltqp/internal/store
cpu: AMD EPYC 7B13
BenchmarkMatchNowByPredicate-8   	    1808	    314750 ns/op	  120 triples/op
BenchmarkAddThroughput-8         	      60	  19490027 ns/op	 5242880 B/op	      42 allocs/op
PASS
ok  	ltqp/internal/store	2.1s
pkg: ltqp/internal/turtle
BenchmarkParseDocument-8         	    3600	    316933 ns/op
PASS
`

func TestWriteBenchJSON(t *testing.T) {
	var out strings.Builder
	if err := writeBenchJSON(strings.NewReader(sampleBenchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if report.GoOS != "linux" || report.GoArch != "amd64" {
		t.Errorf("platform = %s/%s", report.GoOS, report.GoArch)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(report.Benchmarks))
	}

	b := report.Benchmarks[0]
	if b.Name != "BenchmarkMatchNowByPredicate" {
		t.Errorf("name = %q (GOMAXPROCS suffix not stripped?)", b.Name)
	}
	if b.Package != "ltqp/internal/store" {
		t.Errorf("package = %q", b.Package)
	}
	if b.Iterations != 1808 || b.NsPerOp != 314750 {
		t.Errorf("iters/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if got := b.Extra["triples/op"]; got != 120 {
		t.Errorf("custom unit triples/op = %v", got)
	}

	b = report.Benchmarks[1]
	if b.BytesPerOp == nil || *b.BytesPerOp != 5242880 {
		t.Errorf("B/op = %v", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 42 {
		t.Errorf("allocs/op = %v", b.AllocsPerOp)
	}

	// Package tracking follows pkg: lines across test binaries.
	if got := report.Benchmarks[2].Package; got != "ltqp/internal/turtle" {
		t.Errorf("third benchmark package = %q", got)
	}
	if report.Benchmarks[2].BytesPerOp != nil {
		t.Error("B/op present without -benchmem columns")
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkTooShort-8 100",
		"BenchmarkBadIters-8 abc 100 ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parsed %q", line)
		}
	}
}

// TestParseBenchLineSubtests covers "/"-separated subtest names: the full
// name is preserved, Path splits it into segments, and the -GOMAXPROCS
// suffix is only stripped from the final segment.
func TestParseBenchLineSubtests(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkJoin/stars=4-8  1000  250 ns/op")
	if !ok {
		t.Fatal("subtest line rejected")
	}
	if b.Name != "BenchmarkJoin/stars=4" {
		t.Errorf("name = %q", b.Name)
	}
	if len(b.Path) != 2 || b.Path[0] != "BenchmarkJoin" || b.Path[1] != "stars=4" {
		t.Errorf("path = %v", b.Path)
	}

	// A "-N" inside an earlier segment is part of the subtest name.
	b, ok = parseBenchLine("BenchmarkScan/n-10/cold-8  50  99 ns/op")
	if !ok {
		t.Fatal("nested subtest line rejected")
	}
	if b.Name != "BenchmarkScan/n-10/cold" {
		t.Errorf("name = %q", b.Name)
	}
	if len(b.Path) != 3 || b.Path[1] != "n-10" {
		t.Errorf("path = %v", b.Path)
	}

	// Without a GOMAXPROCS suffix nothing is stripped.
	b, ok = parseBenchLine("BenchmarkScan/cold  50  99 ns/op")
	if !ok {
		t.Fatal("suffix-free line rejected")
	}
	if b.Name != "BenchmarkScan/cold" {
		t.Errorf("name = %q", b.Name)
	}

	// Plain benchmarks carry no Path.
	b, _ = parseBenchLine("BenchmarkPlain-8  10  1 ns/op")
	if b.Path != nil {
		t.Errorf("plain benchmark path = %v", b.Path)
	}
}

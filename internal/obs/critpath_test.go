package obs

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ltqp/internal/metrics"
)

// chainEnv builds a synthetic dependent fetch chain a → b → c plus one
// concurrent unrelated fetch d, mirroring a 3-hop traversal: each document
// could only start once its parent's links were extracted.
func chainEnv(epoch time.Time) []metrics.Request {
	req := func(url, parent string, startMS, durMS int, status int) metrics.Request {
		return metrics.Request{
			URL:    url,
			Parent: parent,
			Start:  epoch.Add(time.Duration(startMS) * time.Millisecond),
			End:    epoch.Add(time.Duration(startMS+durMS) * time.Millisecond),
			Status: status,
			Server: 2 * time.Millisecond,
		}
	}
	return []metrics.Request{
		req("http://x/a.ttl", "", 0, 10, 200),
		req("http://x/b.ttl", "http://x/a.ttl", 10, 10, 200),
		req("http://x/c.ttl", "http://x/b.ttl", 20, 10, 200),
		req("http://x/d.ttl", "http://x/a.ttl", 10, 5, 200),
	}
}

func TestCritPathFirstResultChain(t *testing.T) {
	epoch := time.Now()
	reqs := chainEnv(epoch)
	cp := ComputeCritPath(reqs, epoch, []time.Duration{31 * time.Millisecond}, []string{"http://x/c.ttl"})
	if cp == nil {
		t.Fatal("nil critical path")
	}
	want := []string{"http://x/a.ttl", "http://x/b.ttl", "http://x/c.ttl"}
	if got := cp.FirstResultURLs(); !reflect.DeepEqual(got, want) {
		t.Errorf("first-result chain = %v, want %v", got, want)
	}
	if cp.TTFRMS != 31 {
		t.Errorf("TTFR = %v, want 31", cp.TTFRMS)
	}
	if cp.GatingMS != 30 {
		t.Errorf("gating = %v, want 30 (three serialized 10ms fetches)", cp.GatingMS)
	}
	if cp.ServerMS != 6 {
		t.Errorf("server share = %v, want 6", cp.ServerMS)
	}
	if cp.TotalMS != 30 {
		t.Errorf("total = %v, want 30", cp.TotalMS)
	}
	// The longest chain ends at the last-finishing fetch — c here too.
	if got := chainURLs(cp.LongestChain); !reflect.DeepEqual(got, want) {
		t.Errorf("longest chain = %v, want %v", got, want)
	}
}

func TestCritPathFallbackWithoutProvenance(t *testing.T) {
	epoch := time.Now()
	reqs := chainEnv(epoch)
	// No firstSources: gate = latest successful fetch completed before the
	// first result at 25ms — b.ttl (ends 20ms; c ends 30ms, after).
	cp := ComputeCritPath(reqs, epoch, []time.Duration{25 * time.Millisecond}, nil)
	want := []string{"http://x/a.ttl", "http://x/b.ttl"}
	if got := cp.FirstResultURLs(); !reflect.DeepEqual(got, want) {
		t.Errorf("fallback chain = %v, want %v", got, want)
	}
}

func TestCritPathRetryAndFailure(t *testing.T) {
	epoch := time.Now()
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	reqs := []metrics.Request{
		{URL: "http://x/a.ttl", Start: at(0), End: at(5), Status: 200},
		// First attempt at b fails; the retry succeeds later. The chain must
		// use the successful attempt.
		{URL: "http://x/b.ttl", Parent: "http://x/a.ttl", Start: at(5), End: at(8), Status: 503, Err: "503", Attempt: 1},
		{URL: "http://x/b.ttl", Parent: "http://x/a.ttl", Start: at(12), End: at(20), Status: 200, Attempt: 2},
	}
	cp := ComputeCritPath(reqs, epoch, []time.Duration{21 * time.Millisecond}, []string{"http://x/b.ttl"})
	chain := cp.FirstResultChain
	if len(chain) != 2 || chain[1].Status != 200 || chain[1].DurMS != 8 {
		t.Fatalf("chain must use the successful retry: %+v", chain)
	}
}

func TestCritPathCycleTerminates(t *testing.T) {
	epoch := time.Now()
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	// Adversarial cross-linking: a's parent is b and b's parent is a.
	reqs := []metrics.Request{
		{URL: "a", Parent: "b", Start: at(0), End: at(1), Status: 200},
		{URL: "b", Parent: "a", Start: at(1), End: at(2), Status: 200},
	}
	cp := ComputeCritPath(reqs, epoch, []time.Duration{3 * time.Millisecond}, []string{"b"})
	if n := len(cp.FirstResultChain); n != 2 {
		t.Fatalf("cycle not terminated: chain length %d", n)
	}
}

func TestCritPathEmptyAndNil(t *testing.T) {
	if cp := ComputeCritPath(nil, time.Now(), nil, nil); cp != nil {
		t.Error("no requests must yield a nil critical path")
	}
	var cp *CritPath
	if cp.FirstResultURLs() != nil {
		t.Error("nil CritPath accessors must be inert")
	}
	if !strings.Contains(cp.Render(40), "no critical path") {
		t.Error("nil CritPath must render the empty notice")
	}
}

func TestCritPathRenderMarksChain(t *testing.T) {
	epoch := time.Now()
	reqs := chainEnv(epoch)
	cp := ComputeCritPath(reqs, epoch, []time.Duration{31 * time.Millisecond}, []string{"http://x/c.ttl"})
	out := cp.Render(40)
	if !strings.Contains(out, "critical path to first result") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("critical-path bars must use the '#' fill:\n%s", out)
	}
	if !strings.Contains(out, "server 2.0ms") {
		t.Errorf("server share not annotated:\n%s", out)
	}
}

package ltqp_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/obs"
	"ltqp/internal/podserver"
	"ltqp/internal/solid"
)

// explainEnv serves a three-document chain a.ttl → b.ttl → c.ttl where each
// hop's triple lives in a different document, so a 3-pattern join has fully
// predictable provenance. c.ttl links back to a.ttl to force a duplicate
// edge in the topology.
func explainEnv(t *testing.T) (base string, engine *ltqp.Engine, cleanup func()) {
	t.Helper()
	ps := podserver.New()
	srv := httptest.NewServer(ps)
	base = srv.URL
	ps.AddDocument(base+"/a.ttl", fmt.Sprintf(
		"<%s/a.ttl#alice> <http://v/friend> <%s/b.ttl#bob>.", base, base), solid.PublicAccess)
	ps.AddDocument(base+"/b.ttl", fmt.Sprintf(
		"<%s/b.ttl#bob> <http://v/post> <%s/c.ttl#p1>.", base, base), solid.PublicAccess)
	ps.AddDocument(base+"/c.ttl", fmt.Sprintf(
		"<%s/c.ttl#p1> <http://v/title> \"hello\".\n<%s/c.ttl#p1> <http://v/friend> <%s/a.ttl#alice>.",
		base, base, base), solid.PublicAccess)
	engine = ltqp.New(ltqp.Config{
		Client:   srv.Client(),
		Strategy: ltqp.StrategyCMatch,
		Explain:  true,
	})
	return base, engine, srv.Close
}

func explainQuery(base string) string {
	return fmt.Sprintf(`SELECT ?friend ?post ?title WHERE {
  <%s/a.ttl#alice> <http://v/friend> ?friend .
  ?friend <http://v/post> ?post .
  ?post <http://v/title> ?title .
}`, base)
}

// TestExplainThreeHopProvenance is the acceptance test for the explain
// layer: a join across three documents carries exactly those documents as
// provenance, and the topology names every dereferenced document with
// correctly labeled edges.
func TestExplainThreeHopProvenance(t *testing.T) {
	base, engine, done := explainEnv(t)
	defer done()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.Query(ctx, explainQuery(base))
	if err != nil {
		t.Fatal(err)
	}
	var rows []ltqp.Binding
	for b := range res.Results {
		rows = append(rows, b)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("results = %d, want 1", len(rows))
	}

	// Per-result provenance: exactly the three contributing documents.
	wantDocs := []string{base + "/a.ttl", base + "/b.ttl", base + "/c.ttl"}
	if got := ltqp.Sources(rows[0]); !reflect.DeepEqual(got, wantDocs) {
		t.Errorf("Sources = %v, want %v", got, wantDocs)
	}
	// Provenance is invisible to the solution's variables.
	if got := rows[0].Vars(); !reflect.DeepEqual(got, []string{"friend", "post", "title"}) {
		t.Errorf("Vars = %v", got)
	}
	if got, _ := rows[0].Get("title"); got.Value != "hello" {
		t.Errorf("title = %v", got)
	}

	report := res.Explain()
	if report == nil {
		t.Fatal("Explain() = nil with Config.Explain set")
	}
	if report.Schema != 1 {
		t.Errorf("schema = %d", report.Schema)
	}
	if !reflect.DeepEqual(report.Seeds, []string{base + "/a.ttl"}) {
		t.Errorf("seeds = %v", report.Seeds)
	}

	// Every dereferenced document appears as a node, seed marked, all 200.
	nodes := map[string]obs.TopoNode{}
	for _, n := range report.Topology.Nodes {
		nodes[n.URL] = n
	}
	if len(nodes) != 3 {
		t.Fatalf("topology nodes = %+v, want the 3 documents", report.Topology.Nodes)
	}
	for i, doc := range wantDocs {
		n, ok := nodes[doc]
		if !ok {
			t.Fatalf("document %s missing from topology", doc)
		}
		if n.Status != 200 || n.Depth != i {
			t.Errorf("node %s = status %d depth %d, want 200/%d", doc, n.Status, n.Depth, i)
		}
		if n.Seed != (i == 0) {
			t.Errorf("node %s seed = %v", doc, n.Seed)
		}
		if n.Triples == 0 {
			t.Errorf("node %s records no triples", doc)
		}
	}

	// Edge labels: the discovery chain is followed, the back-link to the
	// already-visited seed is a duplicate, subject self-references are self.
	type key struct{ from, to string }
	edges := map[key]obs.TopoEdge{}
	for _, e := range report.Topology.Edges {
		edges[key{e.From, e.To}] = e
	}
	for _, want := range []struct {
		from, to, extractor, status string
	}{
		{"", base + "/a.ttl", "seed", obs.EdgeFollowed},
		{base + "/a.ttl", base + "/b.ttl", "match", obs.EdgeFollowed},
		{base + "/b.ttl", base + "/c.ttl", "match", obs.EdgeFollowed},
		{base + "/c.ttl", base + "/a.ttl", "match", obs.EdgeDuplicate},
		{base + "/a.ttl", base + "/a.ttl", "match", obs.EdgeSelf},
	} {
		e, ok := edges[key{want.from, want.to}]
		if !ok {
			t.Errorf("edge %s -> %s missing from topology", want.from, want.to)
			continue
		}
		if e.Extractor != want.extractor || e.Status != want.status {
			t.Errorf("edge %s -> %s = %s/%s, want %s/%s",
				want.from, want.to, e.Extractor, e.Status, want.extractor, want.status)
		}
	}

	// Each document contributed exactly one pattern match to the join.
	if len(report.Contributions) != 3 {
		t.Fatalf("contributions = %+v", report.Contributions)
	}
	for i, c := range report.Contributions {
		if c.Document != wantDocs[i] || c.Matches != 1 {
			t.Errorf("contribution[%d] = %+v, want {%s 1}", i, c, wantDocs[i])
		}
	}

	// The result-arrival timeline interleaves with traversal progress: one
	// result event carrying the row's source set.
	if len(report.Topology.Results) != 1 {
		t.Fatalf("result events = %+v", report.Topology.Results)
	}
	if got := report.Topology.Results[0].Sources; !reflect.DeepEqual(got, wantDocs) {
		t.Errorf("result event sources = %v", got)
	}
	resultEvents := 0
	for _, ev := range report.Topology.Timeline {
		if ev.Kind == "result" {
			resultEvents++
		}
	}
	if resultEvents != 1 {
		t.Errorf("timeline result events = %d, want 1", resultEvents)
	}

	// The Graphviz export names every document and the duplicate edge
	// renders de-emphasized.
	dot := res.TopologyDOT()
	for _, want := range append(wantDocs, "digraph traversal", "peripheries=2", "style=dotted") {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}

	if data, err := report.JSON(); err != nil || !strings.Contains(string(data), `"schema": 1`) {
		t.Errorf("report JSON = %v / %s", err, data)
	}
}

// TestExplainDisabledCarriesNothing: the same query without Config.Explain
// produces bare solutions and a nil report.
func TestExplainDisabledCarriesNothing(t *testing.T) {
	ps := podserver.New()
	srv := httptest.NewServer(ps)
	defer srv.Close()
	base := srv.URL
	ps.AddDocument(base+"/a.ttl", fmt.Sprintf(
		"<%s/a.ttl#alice> <http://v/friend> <%s/a.ttl#bob>.", base, base), solid.PublicAccess)
	engine := ltqp.New(ltqp.Config{Client: srv.Client(), Strategy: ltqp.StrategyCMatch})

	rows, err := engine.Select(context.Background(),
		fmt.Sprintf("SELECT ?f WHERE { <%s/a.ttl#alice> <http://v/friend> ?f . }", base))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("results = %d, want 1", len(rows))
	}
	if src := ltqp.Sources(rows[0]); src != nil {
		t.Errorf("explain-disabled run produced sources: %v", src)
	}

	res, err := engine.Query(context.Background(),
		fmt.Sprintf("SELECT ?f WHERE { <%s/a.ttl#alice> <http://v/friend> ?f . }", base))
	if err != nil {
		t.Fatal(err)
	}
	for range res.Results {
	}
	if res.Explain() != nil {
		t.Error("Explain() non-nil without Config.Explain")
	}
}

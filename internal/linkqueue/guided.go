package linkqueue

import (
	"container/heap"
	"strings"
	"sync"
)

// Relevance is what the guided queue knows about the running query: the
// documents of the constant IRIs mentioned in its patterns. A link pointing
// at a document the query names is almost certainly needed to satisfy a
// pattern, so it jumps the queue (the cMatch-style guidance of "Guided
// Link-Traversal-Based Query Processing").
type Relevance struct {
	// DocIRIs are the fragment-stripped document URLs of every constant
	// IRI in the query, normalized with Normalize.
	DocIRIs map[string]bool
}

// NewRelevance builds a Relevance from raw query IRIs (fragments stripped,
// URLs normalized).
func NewRelevance(iris []string) *Relevance {
	r := &Relevance{DocIRIs: make(map[string]bool, len(iris))}
	for _, iri := range iris {
		if i := strings.IndexByte(iri, '#'); i >= 0 {
			iri = iri[:i]
		}
		r.DocIRIs[Normalize(iri)] = true
	}
	return r
}

// Scorer is implemented by queue disciplines that rank links; the Evented
// wrapper surfaces the score on link_queued events so queue-policy
// decisions are observable.
type Scorer interface {
	// Score returns the discipline's current relevance score for a link
	// (higher runs earlier). Pure: it does not mutate the queue.
	Score(l Link) float64
}

// Feedback is implemented by queue disciplines that learn from traversal:
// the engine reports every ingested document's productivity — how many of
// its triples matched a query pattern predicate or class — before pushing
// the links discovered in it, so links from productive documents inherit a
// priority boost.
type Feedback interface {
	DocumentIngested(url string, relevantTriples, totalTriples int)
}

// reasonScore maps discovery reasons to base scores (higher runs earlier);
// the inverse of DefaultPriorities' ranks, on a wider scale so the
// relevance and productivity boosts interleave between reason tiers.
var reasonScore = map[string]float64{
	"seed":                 100,
	"type-index":           40,
	"type-index-container": 40,
	"solid-profile":        32,
	"storage":              32,
	"match":                24,
	"ldp-container":        12,
	"see-also":             8,
	"all":                  4,
}

// Boosts added on top of the reason tier.
const (
	// mentionBoost rewards links whose document URL appears as a constant
	// IRI in the query — a pattern cannot be satisfied without it.
	mentionBoost = 50
	// productivityBoost is the maximum reward for links discovered in a
	// document whose triples matched query patterns; scaled by the source
	// document's relevant-triple ratio.
	productivityBoost = 16
)

// Guided is the relevance-prioritized link queue: links are scored by query
// relevance (constant-IRI mentions, discovery reason, source-document
// productivity) and popped best-first — but round-robin across origins, so
// one host, however relevant (or hostile), cannot monopolize the traversal
// while others starve.
type Guided struct {
	mu   sync.Mutex
	rel  *Relevance
	seen map[string]bool
	// origins maps origin → its score-ordered sub-heap; ring fixes the
	// round-robin order (origins in first-seen order).
	origins map[string]*originHeap
	ring    []string
	rr      int
	length  int
	seq     int
	// prod records per-document productivity feedback: the fraction of a
	// document's triples that matched a query pattern, in [0, 1], plus a
	// flag that any triple matched at all.
	prod map[string]float64
	// typeIndexed marks (normalized) URLs reached through the query's type
	// index: the type-index registration and everything below it. Members
	// of such containers are instances of a class the query asks for, so
	// their ldp-contains links inherit the type-index tier instead of the
	// generic container tier — the structural payoff of type-index guidance.
	typeIndexed map[string]bool
}

// NewGuided returns an empty guided queue; nil relevance disables the
// constant-IRI mention boost but keeps reason scoring and fairness.
func NewGuided(rel *Relevance) *Guided {
	return &Guided{
		rel:         rel,
		seen:        map[string]bool{},
		origins:     map[string]*originHeap{},
		prod:        map[string]float64{},
		typeIndexed: map[string]bool{},
	}
}

type scoredItem struct {
	link  Link
	score float64
	seq   int
}

type originHeap []scoredItem

func (h originHeap) Len() int { return len(h) }
func (h originHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score // max-heap: best score first
	}
	return h[i].seq < h[j].seq // FIFO within a score
}
func (h originHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *originHeap) Push(x interface{}) { *h = append(*h, x.(scoredItem)) }
func (h *originHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// underTypeIndex reports whether a link lives below a type-index
// registration matched to the query: the registration's instance and
// container links directly, and — transitively — anything an ldp-contains
// edge reaches from such a document. Callers hold q.mu.
func (q *Guided) underTypeIndex(l Link) bool {
	switch l.Reason {
	case "type-index", "type-index-container":
		return true
	case "ldp-container":
		return q.typeIndexed[Normalize(l.Via)]
	}
	return false
}

// score computes a link's priority under the current feedback state.
// Callers hold q.mu.
func (q *Guided) score(l Link) float64 {
	s, ok := reasonScore[l.Reason]
	if !ok {
		s = 2
	}
	// Members of a type-index-matched container are instances of a class
	// the query names — promote them from the blind-container tier to just
	// under the type index itself. The first condition covers documents
	// whose own URL gained type-index evidence after they were queued
	// under a blander reason (see the dedup note in Push).
	if promoted := reasonScore["type-index"] - 2; s < promoted {
		if q.typeIndexed[Normalize(l.URL)] ||
			(l.Reason == "ldp-container" && q.typeIndexed[Normalize(l.Via)]) {
			s = promoted
		}
	}
	if q.rel != nil && q.rel.DocIRIs[Normalize(l.URL)] {
		s += mentionBoost
	}
	if ratio, ok := q.prod[Normalize(l.Via)]; ok {
		s += productivityBoost * ratio
	}
	// Shallow links edge out deep ones at equal relevance: breadth-first
	// tie-breaking keeps the traversal frontier from diving down one
	// deep chain (a link-bomb shape) when equally relevant siblings wait.
	s -= 0.25 * float64(l.Depth)
	return s
}

// Score implements Scorer.
func (q *Guided) Score(l Link) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.score(l)
}

// DocumentIngested implements Feedback: it records how productive a
// document turned out to be, so links discovered in it are boosted. Called
// by the engine after ingesting a document and before pushing its links.
func (q *Guided) DocumentIngested(url string, relevantTriples, totalTriples int) {
	if totalTriples <= 0 || relevantTriples <= 0 {
		return
	}
	ratio := float64(relevantTriples) / float64(totalTriples)
	q.mu.Lock()
	q.prod[Normalize(url)] = ratio
	q.mu.Unlock()
}

// Push implements Queue.
func (q *Guided) Push(l Link) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	key := Normalize(l.URL)
	// Lineage is learned even from deduplicated pushes: a container is
	// often discovered twice — first through the blind storage walk, then
	// through the type index — and whichever arrives first wins the queue
	// slot. The type-index evidence must still land, and the queued item
	// must be re-ranked under it, or the promotion hinges on a race.
	if q.underTypeIndex(l) && !q.typeIndexed[key] {
		q.typeIndexed[key] = true
		q.rescore(key)
	}
	if q.seen[key] {
		return false
	}
	q.seen[key] = true
	origin := Origin(l.URL)
	h, ok := q.origins[origin]
	if !ok {
		h = &originHeap{}
		q.origins[origin] = h
		q.ring = append(q.ring, origin)
	}
	q.seq++
	heap.Push(h, scoredItem{link: l, score: q.score(l), seq: q.seq})
	q.length++
	return true
}

// rescore re-ranks the queued entry for key (if any) under the current
// lineage/feedback state. Callers hold q.mu.
func (q *Guided) rescore(key string) {
	h, ok := q.origins[Origin(key)]
	if !ok {
		return
	}
	for i := range *h {
		if Normalize((*h)[i].link.URL) == key {
			(*h)[i].score = q.score((*h)[i].link)
			heap.Fix(h, i)
			return
		}
	}
}

// Pop implements Queue: it advances round-robin to the next origin with
// queued links and returns that origin's best-scored link.
func (q *Guided) Pop() (Link, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.length == 0 {
		return Link{}, false
	}
	for i := 0; i < len(q.ring); i++ {
		origin := q.ring[q.rr%len(q.ring)]
		q.rr++
		h := q.origins[origin]
		if h.Len() == 0 {
			continue
		}
		it := heap.Pop(h).(scoredItem)
		q.length--
		return it.link, true
	}
	return Link{}, false
}

// Len implements Queue.
func (q *Guided) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.length
}

// Seen implements Queue.
func (q *Guided) Seen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.seen)
}

package linkqueue

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestFIFOOrderAndDedup(t *testing.T) {
	q := NewFIFO()
	if !q.Push(Link{URL: "http://a", Reason: "seed"}) {
		t.Error("first push should be accepted")
	}
	if q.Push(Link{URL: "http://a", Reason: "match"}) {
		t.Error("duplicate URL should be dropped")
	}
	q.Push(Link{URL: "http://b"})
	q.Push(Link{URL: "http://c"})
	if q.Len() != 3 || q.Seen() != 3 {
		t.Errorf("Len = %d, Seen = %d", q.Len(), q.Seen())
	}
	var order []string
	for {
		l, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, l.URL)
	}
	if fmt.Sprint(order) != "[http://a http://b http://c]" {
		t.Errorf("order = %v", order)
	}
	// Popped URLs stay deduplicated.
	if q.Push(Link{URL: "http://a"}) {
		t.Error("re-push after pop should be dropped")
	}
	if _, ok := q.Pop(); ok {
		t.Error("empty queue should report !ok")
	}
}

func TestPriorityRanksReasons(t *testing.T) {
	q := NewPriority(nil)
	q.Push(Link{URL: "http://noise", Reason: "all"})
	q.Push(Link{URL: "http://container", Reason: "ldp-container"})
	q.Push(Link{URL: "http://ti", Reason: "type-index"})
	q.Push(Link{URL: "http://seed", Reason: "seed"})
	q.Push(Link{URL: "http://match", Reason: "match"})
	var order []string
	for {
		l, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, l.Reason)
	}
	want := "[seed type-index match ldp-container all]"
	if fmt.Sprint(order) != want {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestPriorityFIFOWithinRank(t *testing.T) {
	q := NewPriority(nil)
	for i := 0; i < 5; i++ {
		q.Push(Link{URL: fmt.Sprintf("http://x%d", i), Reason: "match"})
	}
	for i := 0; i < 5; i++ {
		l, ok := q.Pop()
		if !ok || l.URL != fmt.Sprintf("http://x%d", i) {
			t.Errorf("pop %d = %v", i, l.URL)
		}
	}
}

func TestPriorityUnknownReasonLowest(t *testing.T) {
	q := NewPriority(nil)
	q.Push(Link{URL: "http://unknown", Reason: "mystery"})
	q.Push(Link{URL: "http://all", Reason: "all"})
	l, _ := q.Pop()
	if l.Reason != "all" {
		t.Errorf("known reason should outrank unknown; got %s", l.Reason)
	}
}

func TestQueuesConcurrentSafety(t *testing.T) {
	for _, q := range []Queue{NewFIFO(), NewPriority(nil)} {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					q.Push(Link{URL: fmt.Sprintf("http://w%d-%d", w, i)})
					q.Pop()
				}
			}(w)
		}
		wg.Wait()
		if q.Seen() != 400 {
			t.Errorf("Seen = %d, want 400", q.Seen())
		}
	}
}

func TestQueueProperties(t *testing.T) {
	// Property: popping yields each accepted URL exactly once.
	f := func(urls []string) bool {
		q := NewPriority(nil)
		accepted := map[string]bool{}
		for _, u := range urls {
			if u == "" {
				continue
			}
			if q.Push(Link{URL: u, Reason: "match"}) {
				if accepted[u] {
					return false // accepted a duplicate
				}
				accepted[u] = true
			}
		}
		popped := map[string]bool{}
		for {
			l, ok := q.Pop()
			if !ok {
				break
			}
			if popped[l.URL] {
				return false
			}
			popped[l.URL] = true
		}
		return len(popped) == len(accepted)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTopologyRecordsGraph(t *testing.T) {
	epoch := time.Now()
	topo := NewTopology(epoch)
	topo.Seed("http://pod/card")
	topo.Document("http://pod/card", 0, 200, 12, 800, epoch.Add(time.Millisecond), 2*time.Millisecond)
	topo.Link("http://pod/card", "http://pod/posts/", "solid-profile", "storage", EdgeFollowed)
	topo.Document("http://pod/posts/", 1, 200, 30, 2000, epoch.Add(4*time.Millisecond), 3*time.Millisecond)
	topo.Link("http://pod/posts/", "http://pod/card", "match", "match", EdgeDuplicate)
	topo.Link("http://pod/posts/", "http://pod/deep", "ldp-container", "ldp-container", EdgeDepthPruned)
	topo.DocumentError("http://pod/missing", 1, "404", epoch.Add(5*time.Millisecond), time.Millisecond)
	topo.Result(0, []string{"http://pod/card", "http://pod/posts/"})

	if topo.Documents() != 3 || topo.Links() != 4 || topo.Results() != 1 {
		t.Fatalf("counts: %d docs, %d links, %d results", topo.Documents(), topo.Links(), topo.Results())
	}

	snap := topo.Snapshot()
	if len(snap.Nodes) != 3 || !snap.Nodes[0].Seed {
		t.Fatalf("nodes = %+v", snap.Nodes)
	}
	if snap.Nodes[0].Status != 200 || snap.Nodes[0].Triples != 12 || snap.Nodes[0].Bytes != 800 {
		t.Errorf("seed node = %+v", snap.Nodes[0])
	}
	if snap.Nodes[2].Error != "404" {
		t.Errorf("error node = %+v", snap.Nodes[2])
	}
	// Edge 0 is the synthetic seed edge.
	if snap.Edges[0].Extractor != "seed" || snap.Edges[0].From != "" {
		t.Errorf("seed edge = %+v", snap.Edges[0])
	}
	if snap.Edges[1].Extractor != "solid-profile" || snap.Edges[1].Status != EdgeFollowed {
		t.Errorf("followed edge = %+v", snap.Edges[1])
	}
	if snap.Edges[2].Status != EdgeDuplicate || snap.Edges[3].Status != EdgeDepthPruned {
		t.Errorf("rejected edges = %+v, %+v", snap.Edges[2], snap.Edges[3])
	}

	// Timeline interleaves 3 document completions and 1 result, sorted.
	if len(snap.Timeline) != 4 {
		t.Fatalf("timeline = %+v", snap.Timeline)
	}
	for i := 1; i < len(snap.Timeline); i++ {
		if snap.Timeline[i].AtMS < snap.Timeline[i-1].AtMS {
			t.Fatalf("timeline out of order: %+v", snap.Timeline)
		}
	}
}

func TestTopologyDOT(t *testing.T) {
	topo := NewTopology(time.Now())
	topo.Seed("http://pod/card")
	topo.Document("http://pod/card", 0, 200, 5, 100, time.Now(), time.Millisecond)
	topo.Link("http://pod/card", "http://pod/posts/", "ldp-container", "ldp-container", EdgeFollowed)
	topo.Link("http://pod/card", "http://pod/dup", "match", "match", EdgeDuplicate)
	topo.DocumentError("http://pod/dead", 1, "boom", time.Now(), 0)

	dot := topo.DOT()
	for _, want := range []string{
		"digraph traversal {",
		`"http://pod/card" -> "http://pod/posts/"`,
		`label="ldp-container"`,
		"peripheries=2",            // seed node
		"style=dotted, color=gray", // non-followed edge
		"style=dashed, color=red",  // failed dereference
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// TestTopologyNilSafe: a nil recorder is the disabled state — every method
// must no-op, and the snapshot must be an empty skeleton.
func TestTopologyNilSafe(t *testing.T) {
	var topo *Topology
	topo.Seed("x")
	topo.Document("x", 0, 200, 1, 1, time.Now(), 0)
	topo.DocumentError("x", 0, "e", time.Now(), 0)
	topo.Link("a", "b", "e", "r", EdgeFollowed)
	topo.Result(0, nil)
	if topo.Documents() != 0 || topo.Links() != 0 || topo.Results() != 0 {
		t.Error("nil topology reported non-zero counts")
	}
	snap := topo.Snapshot()
	if snap.Nodes == nil || snap.Edges == nil || snap.Results == nil || snap.Timeline == nil {
		t.Error("nil topology snapshot has nil slices (breaks JSON shape)")
	}
	if !strings.Contains(topo.DOT(), "digraph traversal") {
		t.Error("nil topology DOT not a digraph skeleton")
	}
}

func TestTopologyConcurrent(t *testing.T) {
	topo := NewTopology(time.Now())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				url := "http://pod/doc"
				topo.Document(url, n, 200, 1, 1, time.Now(), 0)
				topo.Link(url, "http://pod/next", "match", "match", EdgeFollowed)
				topo.Result(j, []string{url})
			}
		}(i)
	}
	wg.Wait()
	if topo.Documents() != 1 {
		t.Errorf("documents = %d, want 1 (same URL)", topo.Documents())
	}
	if topo.Links() != 400 || topo.Results() != 400 {
		t.Errorf("links = %d, results = %d, want 400 each", topo.Links(), topo.Results())
	}
}

package rdf

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// numericDatatypes enumerates the XSD datatypes the evaluator treats as
// numeric.
var numericDatatypes = map[string]bool{
	XSDInteger:            true,
	XSDLong:               true,
	XSDInt:                true,
	XSDShort:              true,
	XSDByte:               true,
	XSDDecimal:            true,
	XSDFloat:              true,
	XSDDouble:             true,
	XSDNonNegativeInteger: true,
}

// IsNumeric reports whether the term is a literal of a numeric XSD datatype.
func (t Term) IsNumeric() bool {
	return t.Kind == TermLiteral && numericDatatypes[t.Datatype]
}

// IsIntegral reports whether the term is a literal of an integer-family
// datatype.
func (t Term) IsIntegral() bool {
	if t.Kind != TermLiteral {
		return false
	}
	switch t.Datatype {
	case XSDInteger, XSDLong, XSDInt, XSDShort, XSDByte, XSDNonNegativeInteger:
		return true
	}
	return false
}

// Int returns the integer value of a numeric literal.
func (t Term) Int() (int64, error) {
	if t.Kind != TermLiteral {
		return 0, fmt.Errorf("rdf: %s is not a literal", t)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t.Value), 10, 64)
	if err != nil {
		// Integer-valued floats (e.g. "3.0") are accepted.
		f, ferr := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
		if ferr != nil {
			return 0, fmt.Errorf("rdf: %q is not an integer: %w", t.Value, err)
		}
		return int64(f), nil
	}
	return v, nil
}

// Float returns the floating-point value of a numeric literal.
func (t Term) Float() (float64, error) {
	if t.Kind != TermLiteral {
		return 0, fmt.Errorf("rdf: %s is not a literal", t)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, fmt.Errorf("rdf: %q is not a number: %w", t.Value, err)
	}
	return v, nil
}

// Bool returns the boolean value of an xsd:boolean literal.
func (t Term) Bool() (bool, error) {
	if t.Kind != TermLiteral {
		return false, fmt.Errorf("rdf: %s is not a literal", t)
	}
	switch strings.TrimSpace(t.Value) {
	case "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("rdf: %q is not a boolean", t.Value)
}

// dateTimeLayouts lists the lexical layouts accepted for xsd:dateTime and
// xsd:date values.
var dateTimeLayouts = []string{
	"2006-01-02T15:04:05.999999999Z07:00",
	"2006-01-02T15:04:05.999999999",
	"2006-01-02T15:04:05Z07:00",
	"2006-01-02T15:04:05",
	"2006-01-02Z07:00",
	"2006-01-02",
}

// Time returns the time value of an xsd:dateTime or xsd:date literal.
func (t Term) Time() (time.Time, error) {
	if t.Kind != TermLiteral {
		return time.Time{}, fmt.Errorf("rdf: %s is not a literal", t)
	}
	lex := strings.TrimSpace(t.Value)
	for _, layout := range dateTimeLayouts {
		if v, err := time.Parse(layout, lex); err == nil {
			return v, nil
		}
	}
	return time.Time{}, fmt.Errorf("rdf: %q is not a dateTime", t.Value)
}

// DateTime returns an xsd:dateTime literal for the given time in UTC.
func DateTime(v time.Time) Term {
	return NewTypedLiteral(v.UTC().Format("2006-01-02T15:04:05.000Z07:00"), XSDDateTime)
}

// Date returns an xsd:date literal for the given time's date in UTC.
func Date(v time.Time) Term {
	return NewTypedLiteral(v.UTC().Format("2006-01-02"), XSDDate)
}

// EffectiveBooleanValue implements the SPARQL EBV rules (§17.2.2): booleans
// by value, numerics false iff zero or NaN, strings false iff empty; other
// terms raise a type error.
func (t Term) EffectiveBooleanValue() (bool, error) {
	if t.Kind != TermLiteral {
		return false, fmt.Errorf("rdf: no effective boolean value for %s", t)
	}
	switch {
	case t.Datatype == XSDBoolean:
		b, err := t.Bool()
		if err != nil {
			return false, nil // invalid boolean lexical form → false per spec
		}
		return b, nil
	case t.IsNumeric():
		f, err := t.Float()
		if err != nil {
			return false, nil
		}
		return f != 0 && f == f, nil
	case t.Datatype == "" || t.Datatype == XSDString || t.Language != "":
		return t.Value != "", nil
	}
	return false, fmt.Errorf("rdf: no effective boolean value for %s", t)
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ltqp/internal/deref"
	"ltqp/internal/rdf"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// upstream simulates an origin server behind FetchFunc: it counts fetches
// and answers 304 when the presented validators match the current version.
type upstream struct {
	mu       sync.Mutex
	etag     string
	body     string
	fetches  atomic.Int64
	inflight atomic.Int64
	maxSeen  atomic.Int64
	delay    time.Duration
}

func (u *upstream) set(etag, body string) {
	u.mu.Lock()
	u.etag, u.body = etag, body
	u.mu.Unlock()
}

func (u *upstream) fetch(url string) deref.FetchFunc {
	return func(ctx context.Context, vals deref.Validators) (*deref.Result, error) {
		n := u.inflight.Add(1)
		defer u.inflight.Add(-1)
		for {
			prev := u.maxSeen.Load()
			if n <= prev || u.maxSeen.CompareAndSwap(prev, n) {
				break
			}
		}
		if u.delay > 0 {
			select {
			case <-time.After(u.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		u.fetches.Add(1)
		u.mu.Lock()
		etag, body := u.etag, u.body
		u.mu.Unlock()
		if vals.ETag != "" && vals.ETag == etag {
			return &deref.Result{URL: url, FinalURL: url, Status: 304, NotModified: true, Validators: vals}, nil
		}
		return &deref.Result{
			URL: url, FinalURL: url, Status: 200, Bytes: int64(len(body)),
			Triples:    []rdf.Triple{rdf.NewTriple(rdf.NewIRI(url+"#s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral(body))},
			Validators: deref.Validators{ETag: etag},
		}, nil
	}
}

func newTestCache(clock *fakeClock, maxBytes int64, ttl time.Duration) *SharedCache {
	return NewSharedCache(SharedCacheOptions{MaxBytes: maxBytes, TTL: ttl, now: clock.Now})
}

func TestFreshHitSkipsNetwork(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 1<<20, time.Minute)
	u := &upstream{}
	u.set(`"v1"`, "hello")

	res1, hit, err := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if err != nil || hit {
		t.Fatalf("first access: hit=%v err=%v", hit, err)
	}
	res2, hit, err := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if err != nil || !hit {
		t.Fatalf("second access: hit=%v err=%v", hit, err)
	}
	if res1 != res2 {
		t.Fatal("hit must return the identical cached result")
	}
	if got := u.fetches.Load(); got != 1 {
		t.Fatalf("upstream fetches = %d, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 5 || st.Documents != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTTLExpiryRevalidatesWith304(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 1<<20, time.Minute)
	u := &upstream{}
	u.set(`"v1"`, "hello")

	first, _, _ := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	clock.Advance(2 * time.Minute)

	res, hit, err := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("revalidation leader must not report a hit")
	}
	if res != first {
		t.Fatal("304 must keep the cached parse")
	}
	st := c.Stats()
	if st.Revalidations != 1 || st.NotModified != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The lease is refreshed: the next access within TTL is a pure hit.
	if _, hit, _ = c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d")); !hit {
		t.Fatal("lease not refreshed after 304")
	}
	if got := u.fetches.Load(); got != 2 {
		t.Fatalf("upstream fetches = %d, want 2", got)
	}
}

func TestTTLExpiryPicksUpNewVersion(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 1<<20, time.Minute)
	u := &upstream{}
	u.set(`"v1"`, "old")

	c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	u.set(`"v2"`, "new-body")
	clock.Advance(2 * time.Minute)

	res, _, err := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Validators.ETag != `"v2"` || res.Bytes != 8 {
		t.Fatalf("stale version served: %+v", res)
	}
	if c.Bytes() != 8 {
		t.Fatalf("occupancy = %d, want replaced entry's 8", c.Bytes())
	}
}

func TestEpochInvalidationForcesRevalidation(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 1<<20, time.Hour)
	u := &upstream{}
	u.set(`"v1"`, "hello")

	c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if epoch := c.Invalidate(); epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}

	// Within TTL, but the epoch moved: must revalidate, not serve stale.
	_, hit, err := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if err != nil || hit {
		t.Fatalf("post-invalidate access: hit=%v err=%v", hit, err)
	}
	if got := u.fetches.Load(); got != 2 {
		t.Fatalf("upstream fetches = %d, want 2 (revalidation)", got)
	}
	if st := c.Stats(); st.NotModified != 1 {
		t.Fatalf("revalidation should have been a 304: %+v", st)
	}
	// Entry re-leased under the new epoch: next access is a plain hit.
	if _, hit, _ := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d")); !hit {
		t.Fatal("entry not re-leased under new epoch")
	}
}

func TestByteBudgetEviction(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 20, time.Hour) // room for 2 10-byte docs
	u := &upstream{}
	u.set(`"v"`, "0123456789")

	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Dereference(context.Background(), key, "http://x/"+key, u.fetch("http://x/"+key)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 || c.Bytes() != 20 {
		t.Fatalf("len=%d bytes=%d, want 2/20", c.Len(), c.Bytes())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// k0 was evicted (LRU); k2 must still be cached.
	if _, hit, _ := c.Dereference(context.Background(), "k2", "http://x/k2", u.fetch("http://x/k2")); !hit {
		t.Fatal("most recent entry evicted")
	}
	if _, hit, _ := c.Dereference(context.Background(), "k0", "http://x/k0", u.fetch("http://x/k0")); hit {
		t.Fatal("LRU entry not evicted")
	}
}

func TestOversizedDocumentNotCached(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 4, time.Hour)
	u := &upstream{}
	u.set(`"v"`, "way too large")

	c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if c.Len() != 0 {
		t.Fatal("oversized document must not enter the cache")
	}
}

// TestSingleflightSharesOneFetch is the satellite's core concurrency test:
// k goroutines dereference the same IRI, exactly one upstream fetch happens,
// and every goroutine receives the identical parsed document.
func TestSingleflightSharesOneFetch(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 1<<20, time.Minute)
	u := &upstream{delay: 20 * time.Millisecond}
	u.set(`"v1"`, "hello")

	const k = 64
	var (
		wg      sync.WaitGroup
		results [k]*deref.Result
		hits    atomic.Int64
	)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, hit, err := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
			if hit {
				hits.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if got := u.fetches.Load(); got != 1 {
		t.Fatalf("upstream fetches = %d, want exactly 1", got)
	}
	if got := u.maxSeen.Load(); got != 1 {
		t.Fatalf("max concurrent upstream fetches = %d, want 1", got)
	}
	for i := 1; i < k; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different document", i)
		}
	}
	st := c.Stats()
	if st.Dedups == 0 {
		t.Fatal("no dedups recorded for concurrent identical dereferences")
	}
	if st.DuplicateInflight != 0 {
		t.Fatalf("duplicate in-flight fetches detected: %d", st.DuplicateInflight)
	}
	// Followers + leader: hits + 1 leader-miss == k accesses.
	if hits.Load() != st.Dedups {
		t.Fatalf("hits=%d dedups=%d, want equal", hits.Load(), st.Dedups)
	}
}

// TestEvictionUnderConcurrentRevalidation hammers a tiny cache from many
// goroutines across several keys and epochs while entries are concurrently
// evicted and revalidated; run with -race. Invariants: no duplicate
// in-flight fetches, occupancy within budget, no lost errors.
func TestEvictionUnderConcurrentRevalidation(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 64, -1) // negative TTL: every access revalidates
	u := &upstream{}
	u.set(`"v1"`, "0123456789abcdef") // 16 bytes → 4 entries fit

	const goroutines = 16
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g+i)%8)
				if i%20 == 19 {
					c.Invalidate()
				}
				if _, _, err := c.Dereference(context.Background(), key, "http://x/"+key, u.fetch("http://x/"+key)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.DuplicateInflight != 0 {
		t.Fatalf("duplicate in-flight fetches: %d", st.DuplicateInflight)
	}
	if c.Bytes() > 64 {
		t.Fatalf("occupancy %d exceeds budget", c.Bytes())
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a 4-entry budget and 8 keys")
	}
}

func TestFollowerRetriesAfterLeaderCancelled(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 1<<20, time.Minute)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderEntered := make(chan struct{})
	release := make(chan struct{})
	var fetches atomic.Int64
	fetch := func(ctx context.Context, vals deref.Validators) (*deref.Result, error) {
		n := fetches.Add(1)
		if n == 1 {
			close(leaderEntered)
			<-release
			return nil, ctx.Err() // leader dies of its own cancellation
		}
		return &deref.Result{URL: "http://x/d", FinalURL: "http://x/d", Status: 200, Bytes: 1}, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Dereference(leaderCtx, "k", "http://x/d", fetch)
		if err == nil {
			t.Error("cancelled leader must fail")
		}
	}()

	<-leaderEntered
	wg.Add(1)
	var followerRes *deref.Result
	go func() {
		defer wg.Done()
		res, _, err := c.Dereference(context.Background(), "k", "http://x/d", fetch)
		if err != nil {
			t.Error("follower must retry as leader, got:", err)
			return
		}
		followerRes = res
	}()

	// Let the follower join the leader's flight, then kill the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	close(release)
	wg.Wait()

	if followerRes == nil || followerRes.Status != 200 {
		t.Fatalf("follower result = %+v", followerRes)
	}
	if got := fetches.Load(); got != 2 {
		t.Fatalf("fetches = %d, want 2 (failed leader + follower retry)", got)
	}
}

func TestFetchErrorKeepsStaleEntry(t *testing.T) {
	clock := newFakeClock()
	c := newTestCache(clock, 1<<20, time.Minute)
	u := &upstream{}
	u.set(`"v1"`, "hello")

	first, _, _ := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	clock.Advance(2 * time.Minute)

	boom := errors.New("origin down")
	if _, _, err := c.Dereference(context.Background(), "k", "http://x/d",
		func(ctx context.Context, vals deref.Validators) (*deref.Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want origin error", err)
	}
	// The stale parse survives: a later successful revalidation reuses it.
	res, _, err := c.Dereference(context.Background(), "k", "http://x/d", u.fetch("http://x/d"))
	if err != nil {
		t.Fatal(err)
	}
	if res != first {
		t.Fatal("stale entry dropped on fetch failure")
	}
}

package solidbench

import (
	"strings"
	"testing"

	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	if len(a.Persons) != len(b.Persons) || len(a.Posts) != len(b.Posts) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Persons {
		if a.Persons[i].ID != b.Persons[i].ID || a.Persons[i].FirstName != b.Persons[i].FirstName {
			t.Fatalf("person %d differs", i)
		}
	}
	for i := range a.Posts {
		if a.Posts[i].ID != b.Posts[i].ID || a.Posts[i].Content != b.Posts[i].Content {
			t.Fatalf("post %d differs", i)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	cfg1 := SmallConfig()
	cfg2 := SmallConfig()
	cfg2.Seed = 99
	a, b := Generate(cfg1), Generate(cfg2)
	same := 0
	for i := range a.Persons {
		if i < len(b.Persons) && a.Persons[i].FirstName == b.Persons[i].FirstName {
			same++
		}
	}
	if same == len(a.Persons) {
		t.Error("different seeds produced identical persons")
	}
}

func TestSocialNetworkInvariants(t *testing.T) {
	ds := Generate(SmallConfig())
	// Friendships are symmetric and irreflexive.
	for i, p := range ds.Persons {
		for _, f := range p.Friends {
			if f == i {
				t.Errorf("person %d is friends with themself", i)
			}
			if !contains(ds.Persons[f].Friends, i) {
				t.Errorf("friendship %d->%d not symmetric", i, f)
			}
		}
	}
	// Every post belongs to a forum that lists it.
	for pi, post := range ds.Posts {
		found := false
		for _, fp := range ds.Forums[post.Forum].Posts {
			if fp == pi {
				found = true
			}
		}
		if !found {
			t.Errorf("post %d not listed in its forum", pi)
		}
	}
	// Comments reply to valid posts, after them in time.
	for ci, c := range ds.Comments {
		if c.ReplyOf < 0 || c.ReplyOf >= len(ds.Posts) {
			t.Fatalf("comment %d has bad target", ci)
		}
		if !c.Creation.After(ds.Posts[c.ReplyOf].Creation) {
			t.Errorf("comment %d predates its post", ci)
		}
	}
	// Likes reference exactly one message.
	for li, l := range ds.Likes {
		if (l.Post >= 0) == (l.Comment >= 0) {
			t.Errorf("like %d references %d posts and %d comments", li, l.Post, l.Comment)
		}
	}
	// Persons have 20-digit pod ids.
	for _, p := range ds.Persons {
		if len(p.PodID()) != 20 {
			t.Errorf("pod id %q not 20 digits", p.PodID())
		}
	}
}

func TestBuildPodsStructure(t *testing.T) {
	ds := Generate(SmallConfig())
	pods := ds.BuildPods()
	if len(pods) != len(ds.Persons) {
		t.Fatalf("pods = %d", len(pods))
	}
	p0 := pods[0]
	for _, path := range []string{"profile/card", "settings/publicTypeIndex"} {
		if p0.Documents[path] == nil {
			t.Errorf("pod missing %s", path)
		}
	}
	var hasPosts, hasComments, hasForum, hasNoise, hasLikes bool
	for path := range p0.Documents {
		switch {
		case strings.HasPrefix(path, "posts/"):
			hasPosts = true
		case strings.HasPrefix(path, "comments/"):
			hasComments = true
		case strings.HasPrefix(path, "forums/"):
			hasForum = true
		case strings.HasPrefix(path, "noise/"):
			hasNoise = true
		case strings.HasPrefix(path, "likes/"):
			hasLikes = true
		}
	}
	if !hasPosts || !hasComments || !hasForum || !hasNoise || !hasLikes {
		t.Errorf("pod structure incomplete: posts=%v comments=%v forums=%v noise=%v likes=%v",
			hasPosts, hasComments, hasForum, hasNoise, hasLikes)
	}
}

func TestPodDataMatchesDataset(t *testing.T) {
	ds := Generate(SmallConfig())
	pods := ds.BuildPods()
	v := NewVocab(ds.Config.Host)

	// Count hasCreator triples for person 0 across their post documents.
	me := rdf.NewIRI(ds.WebID(0))
	wantPosts := 0
	for _, p := range ds.Posts {
		if p.Creator == 0 {
			wantPosts++
		}
	}
	got := 0
	for path, d := range pods[0].Documents {
		if !strings.HasPrefix(path, "posts/") {
			continue
		}
		for _, tr := range d.Graph.Triples() {
			if tr.P == v.P("hasCreator") && tr.O == me {
				got++
			}
		}
	}
	if got != wantPosts {
		t.Errorf("posts in pod = %d, dataset = %d", got, wantPosts)
	}
}

func TestForumsReferenceCrossPodPosts(t *testing.T) {
	ds := Generate(SmallConfig())
	pods := ds.BuildPods()
	v := NewVocab(ds.Config.Host)
	// At least one forum should contain a post by someone other than its
	// moderator (friends posting on walls) — that is what makes Discover
	// 6/8 traverse pods.
	crossPod := false
	for i := range pods {
		for path, d := range pods[i].Documents {
			if !strings.HasPrefix(path, "forums/") {
				continue
			}
			for _, tr := range d.Graph.Triples() {
				if tr.P == v.P("containerOf") &&
					!strings.HasPrefix(tr.O.Value, ds.PodBase(i)) {
					crossPod = true
				}
			}
		}
	}
	if !crossPod {
		t.Error("no cross-pod forum membership generated")
	}
}

func TestComputeStatsShape(t *testing.T) {
	ds := Generate(DefaultConfig())
	stats := ComputeStats(ds.BuildPods())
	if stats.Pods != 16 {
		t.Fatalf("pods = %d", stats.Pods)
	}
	filesPerPod := float64(stats.Files) / float64(stats.Pods)
	triplesPerPod := float64(stats.Triples) / float64(stats.Pods)

	// The paper's environment: 158,233 files and 3,556,159 triples over
	// 1,531 pods → ≈103 files and ≈2,323 triples per pod. The default
	// config must stay within a factor ~2 of that per-pod shape.
	paperFiles := float64(PaperStats.Files) / float64(PaperStats.Pods)
	paperTriples := float64(PaperStats.Triples) / float64(PaperStats.Pods)
	if filesPerPod < paperFiles/2 || filesPerPod > paperFiles*2 {
		t.Errorf("files/pod = %.1f, paper = %.1f", filesPerPod, paperFiles)
	}
	if triplesPerPod < paperTriples/2 || triplesPerPod > paperTriples*2 {
		t.Errorf("triples/pod = %.1f, paper = %.1f", triplesPerPod, paperTriples)
	}
}

func TestCatalogHas37Queries(t *testing.T) {
	ds := Generate(SmallConfig())
	catalog := ds.Catalog()
	if len(catalog) != 37 {
		t.Fatalf("catalog = %d queries, paper provides 37", len(catalog))
	}
	names := map[string]bool{}
	for _, q := range catalog {
		if names[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		names[q.Name] = true
		if _, err := sparql.ParseQuery(q.Text); err != nil {
			t.Errorf("query %s does not parse: %v", q.Name, err)
		}
	}
	if !names["Discover 1.1"] || !names["Discover 8.4"] {
		t.Error("missing expected discover variants")
	}
}

func TestDiscoverNaming(t *testing.T) {
	ds := Generate(SmallConfig())
	q := ds.Discover(6, 5)
	if q.Name != "Discover 6.5" {
		t.Errorf("name = %s", q.Name)
	}
	if !strings.Contains(q.Text, "containerOf") {
		t.Errorf("Discover 6 should query forums:\n%s", q.Text)
	}
	if !strings.Contains(q.Text, ds.WebID(q.Person)) {
		t.Error("query does not mention its person's WebID")
	}
	q8 := ds.Discover(8, 1)
	if !q8.MultiPod {
		t.Error("Discover 8 should be multi-pod")
	}
	if !strings.Contains(q8.Text, "snvoc:hasPost|snvoc:hasComment") {
		t.Errorf("Discover 8 should use the alternative path:\n%s", q8.Text)
	}
}

func TestFindQuery(t *testing.T) {
	ds := Generate(SmallConfig())
	q, ok := ds.FindQuery("discover 1.2")
	if !ok || q.Name != "Discover 1.2" {
		t.Errorf("FindQuery = %v, %v", q.Name, ok)
	}
	if _, ok := ds.FindQuery("nope"); ok {
		t.Error("FindQuery should miss")
	}
}

func TestVocabIRIs(t *testing.T) {
	v := NewVocab("https://h.example/")
	if v.NS() != "https://h.example/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/" {
		t.Errorf("NS = %s", v.NS())
	}
	if v.Place("New York").Value != "https://h.example/dbpedia.org/resource/New_York" {
		t.Errorf("Place = %s", v.Place("New York").Value)
	}
	if !strings.Contains(v.Tag("Alan_Turing").Value, "/tag/Alan_Turing") {
		t.Errorf("Tag = %s", v.Tag("Alan_Turing").Value)
	}
}

func TestPrivateFractionMarksDocuments(t *testing.T) {
	cfg := SmallConfig()
	cfg.PrivateFraction = 0.95
	ds := Generate(cfg)
	pods := ds.BuildPods()
	private := 0
	for _, p := range pods {
		for path, d := range p.Documents {
			if strings.HasPrefix(path, "posts/") && !d.Access.Public {
				private++
				if len(d.Access.Agents) == 0 {
					t.Error("private doc without agents")
				}
			}
		}
	}
	if private == 0 {
		t.Error("no private documents generated")
	}
}

func TestRNGBounds(t *testing.T) {
	r := newRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	if r.intn(0) != 0 {
		t.Error("intn(0) should be 0")
	}
	if v := r.around(10); v < 5 || v > 20 {
		t.Errorf("around(10) = %d", v)
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed should still produce values")
	}
}

func TestComplexQueriesParse(t *testing.T) {
	ds := Generate(SmallConfig())
	qs := ds.ComplexQueries()
	if len(qs) != 3 {
		t.Fatalf("complex queries = %d", len(qs))
	}
	for _, q := range qs {
		if _, err := sparql.ParseQuery(q.Text); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if !q.MultiPod {
			t.Errorf("%s should be multi-pod", q.Name)
		}
	}
}

func TestPodsDeterministicIncludingACLs(t *testing.T) {
	cfg := SmallConfig()
	cfg.PrivateFraction = 0.5
	build := func() map[string]bool {
		pods := Generate(cfg).BuildPods()
		acl := map[string]bool{}
		for _, p := range pods {
			for path, d := range p.Documents {
				acl[p.IRI(path)] = d.Access.Public
			}
		}
		return acl
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("document sets differ: %d vs %d", len(a), len(b))
	}
	for url, pub := range a {
		if b[url] != pub {
			t.Fatalf("ACL for %s differs across builds", url)
		}
	}
}

func TestPaperScaleEnvironment(t *testing.T) {
	// The full §4.2 environment: 1,531 pods. ~17 s and ~3 GB of heap, so
	// only in full (non -short) runs.
	if testing.Short() {
		t.Skip("paper-scale generation (~17s, ~3GB)")
	}
	ds := Generate(PaperConfig())
	stats := ComputeStats(ds.BuildPods())
	if stats.Pods != PaperStats.Pods {
		t.Fatalf("pods = %d, want %d", stats.Pods, PaperStats.Pods)
	}
	// Within 15% of the paper's reported file and triple counts.
	within := func(got, want int) bool {
		diff := float64(got-want) / float64(want)
		return diff > -0.15 && diff < 0.15
	}
	if !within(stats.Files, PaperStats.Files) {
		t.Errorf("files = %d, paper = %d", stats.Files, PaperStats.Files)
	}
	if !within(stats.Triples, PaperStats.Triples) {
		t.Errorf("triples = %d, paper = %d", stats.Triples, PaperStats.Triples)
	}
}

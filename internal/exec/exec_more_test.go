package exec

import (
	"context"
	"testing"
	"time"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
	"ltqp/internal/store"
	"ltqp/internal/turtle"
)

func TestPathBothEndpointsVariable(t *testing.T) {
	got := runQuery(t, `
@prefix ex: <http://example.org/> .
ex:a ex:next ex:b . ex:b ex:next ex:c .
`, `
PREFIX ex: <http://example.org/>
SELECT ?x ?y WHERE { ?x ex:next+ ?y }`)
	// a→b, a→c, b→c.
	if len(got) != 3 {
		t.Errorf("pairs = %v", got)
	}
}

func TestPathZeroOrMoreBothVars(t *testing.T) {
	got := runQuery(t, `
@prefix ex: <http://example.org/> .
ex:a ex:next ex:b .
`, `
PREFIX ex: <http://example.org/>
SELECT ?x ?y WHERE { ?x ex:next* ?y }`)
	// Zero-length: a→a, b→b, ex:next→ex:next (predicate node appears as
	// neither subject nor object, so: nodes are a, b; pairs a→a, b→b, a→b.
	if len(got) != 3 {
		t.Errorf("pairs = %v", got)
	}
}

func TestPathBothEndpointsConstant(t *testing.T) {
	data := `
@prefix ex: <http://example.org/> .
ex:a ex:next ex:b . ex:b ex:next ex:c .
`
	got := runQuery(t, data, `
PREFIX ex: <http://example.org/>
ASK { ex:a ex:next+ ex:c }`)
	if len(got) != 1 {
		t.Error("reachable pair should hold")
	}
	got = runQuery(t, data, `
PREFIX ex: <http://example.org/>
ASK { ex:c ex:next+ ex:a }`)
	if len(got) != 0 {
		t.Error("unreachable pair should fail")
	}
}

func TestInversePathOfSequence(t *testing.T) {
	got := runQuery(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b . ex:b ex:q ex:c .
`, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:c ^(ex:p/ex:q) ?x }`)
	if len(got) != 1 || got[0]["x"] != rdf.NewIRI("http://example.org/a") {
		t.Errorf("inverse sequence = %v", got)
	}
}

func TestNegatedInverse(t *testing.T) {
	got := runQuery(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p ex:target . ex:b ex:q ex:target .
`, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:target !(^ex:p) ?x }`)
	// Inverse edges into target: via p (excluded) and q (included).
	if len(got) != 1 || got[0]["x"] != rdf.NewIRI("http://example.org/b") {
		t.Errorf("negated inverse = %v", got)
	}
}

func TestGraphPatternEvaluatesOverUnion(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?n WHERE { GRAPH ?g { ?p foaf:nick ?n } }`)
	if len(got) != 1 || got[0]["n"].Value != "d" {
		t.Errorf("graph pattern = %v", got)
	}
}

func TestMinusWithoutSharedVarsKeepsAll(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?n WHERE {
  ?p foaf:name ?n .
  MINUS { ?x foaf:nick ?y }
}`)
	// MINUS with disjoint domains removes nothing (SPARQL §8.3.3).
	if len(got) != 4 {
		t.Errorf("minus disjoint = %d rows", len(got))
	}
}

func TestNestedOptional(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name ?k ?kk WHERE {
  ex:alice foaf:name ?name .
  OPTIONAL {
    ex:alice foaf:knows ?k .
    OPTIONAL { ?k foaf:knows ?kk }
  }
}`)
	// alice knows bob (knows carol) and carol (knows nobody).
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	withKK := 0
	for _, b := range got {
		if b.Has("kk") {
			withKK++
		}
	}
	if withKK != 1 {
		t.Errorf("nested optional rows with kk = %d", withKK)
	}
}

func TestUnionBranchVariablesStayDisjoint(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?a ?b WHERE {
  { ex:alice foaf:name ?a } UNION { ex:bob foaf:name ?b }
}`)
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	for _, b := range got {
		if b.Has("a") == b.Has("b") {
			t.Errorf("row binds both/neither branch var: %v", b)
		}
	}
}

func TestAggExprArithmetic(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT (SUM(?age) / COUNT(?age) AS ?mean) WHERE { ?p ex:age ?age }`)
	if len(got) != 1 {
		t.Fatalf("rows = %v", got)
	}
	if mean, err := got[0]["mean"].Float(); err != nil || mean != 28.75 {
		t.Errorf("mean = %v", got[0]["mean"])
	}
}

func TestAggDistinct(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(DISTINCT ?age) AS ?n) WHERE { ?p ex:age ?age }`)
	if got[0]["n"].Value != "3" {
		t.Errorf("distinct ages = %v", got[0]["n"])
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
SELECT ?decade (COUNT(*) AS ?n) WHERE { ?p ex:age ?age }
GROUP BY (FLOOR(?age / 10) AS ?decade) ORDER BY ?decade`)
	// Ages 25,25,30,35 → decades 2 (two people) and 3 (two people).
	if len(got) != 2 {
		t.Fatalf("groups = %v", got)
	}
	if got[0]["n"].Value != "2" || got[1]["n"].Value != "2" {
		t.Errorf("group sizes = %v", got)
	}
}

func TestFilterExistsSeesSubstitution(t *testing.T) {
	// EXISTS with correlated and path patterns.
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  ?p foaf:name ?name .
  FILTER EXISTS { ?p foaf:knows/foaf:knows ?x }
}`)
	// Only alice: knows bob who knows carol (and carol, who knows no one).
	if len(got) != 1 || got[0]["name"].Value != "Alice" {
		t.Errorf("correlated exists = %v", got)
	}
}

func TestSnapshotSolutionsOperators(t *testing.T) {
	// Exercise the snapshot evaluator branches through EXISTS with
	// UNION, OPTIONAL, BIND, VALUES and FILTER inside.
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  ?p foaf:name ?name .
  FILTER EXISTS {
    { ?p foaf:knows ?f } UNION { ?p foaf:nick ?nick }
    OPTIONAL { ?f ex:age ?fa }
    BIND(1 AS ?one)
    FILTER(?one = 1)
  }
}`)
	// alice, bob (knows) + dave (nick) = 3.
	if len(got) != 3 {
		t.Errorf("exists composite = %v", got)
	}
}

func TestEmptyStoreQueries(t *testing.T) {
	st := store.New()
	st.Close()
	got := runQueryOn(t, st, `SELECT ?s WHERE { ?s ?p ?o }`)
	if len(got) != 0 {
		t.Errorf("empty store = %v", got)
	}
	got = runQueryOn(t, st, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	if len(got) != 1 || got[0]["n"].Value != "0" {
		t.Errorf("count over empty = %v", got)
	}
}

func TestOrderByMixedTypes(t *testing.T) {
	got := runQuery(t, `
@prefix ex: <http://example.org/> .
ex:a ex:v 5 .
ex:b ex:v "text" .
ex:c ex:v ex:iri .
ex:d ex:v 2 .
`, `
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE { ?s ex:v ?v } ORDER BY ?v`)
	if len(got) != 4 {
		t.Fatalf("rows = %d", len(got))
	}
	// IRI < literals; numbers order by value before the string.
	if got[0]["v"].Kind != rdf.TermIRI {
		t.Errorf("first = %v", got[0]["v"])
	}
	if got[1]["v"].Value != "2" || got[2]["v"].Value != "5" {
		t.Errorf("numeric order = %v, %v", got[1]["v"], got[2]["v"])
	}
}

func TestValuesWithUndefJoins(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name ?extra WHERE {
  VALUES (?p ?extra) { (ex:alice "first") (UNDEF "wild") }
  ?p foaf:name ?name .
}`)
	// Row 1 pins alice; row 2 leaves ?p unbound → joins all 4 names.
	if len(got) != 5 {
		t.Errorf("rows = %d: %v", len(got), got)
	}
}

func TestSubqueryLimitInside(t *testing.T) {
	got := runQuery(t, peopleData, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?name WHERE {
  { SELECT ?p WHERE { ?p ex:age ?a } ORDER BY DESC(?a) LIMIT 2 }
  ?p foaf:name ?name .
}`)
	if len(got) != 2 {
		t.Errorf("rows = %v", got)
	}
}

func TestConcurrentQueryExecutions(t *testing.T) {
	// Multiple queries over one closed store run concurrently.
	src := store.New()
	triples, err := turtle.Parse(peopleData, turtle.Options{Base: "http://example.org/doc"})
	if err != nil {
		t.Fatal(err)
	}
	src.AddDocument("http://example.org/doc", triples)
	src.Close()

	q, _ := sparql.ParseQuery(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?n WHERE { ?p foaf:name ?n }`)
	op, _ := algebra.Translate(q)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	done := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			n := 0
			for range Eval(ctx, op, NewEnv(src)) {
				n++
			}
			done <- n
		}()
	}
	for i := 0; i < 8; i++ {
		if n := <-done; n != 4 {
			t.Errorf("concurrent run %d: %d results", i, n)
		}
	}
}

func TestGraphProvenanceAtExecLevel(t *testing.T) {
	// Two documents contribute triples; GRAPH must separate them.
	src := store.New()
	d1 := rdf.NewIRI("http://example.org/doc1")
	d2 := rdf.NewIRI("http://example.org/doc2")
	p := rdf.NewIRI("http://example.org/p")
	src.Add(rdf.NewTriple(rdf.NewIRI("http://a"), p, rdf.NewLiteral("from1")), d1)
	src.Add(rdf.NewTriple(rdf.NewIRI("http://b"), p, rdf.NewLiteral("from2")), d2)
	src.Close()

	// Variable graph binds provenance.
	got := runQueryOn(t, src, `
PREFIX ex: <http://example.org/>
SELECT ?s ?g WHERE { GRAPH ?g { ?s ex:p ?v } }`)
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	byS := map[string]string{}
	for _, b := range got {
		byS[b["s"].Value] = b["g"].Value
	}
	if byS["http://a"] != d1.Value || byS["http://b"] != d2.Value {
		t.Errorf("provenance = %v", byS)
	}

	// Constant graph restricts.
	got = runQueryOn(t, src, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { GRAPH <http://example.org/doc2> { ?s ex:p ?v } }`)
	if len(got) != 1 || got[0]["s"].Value != "http://b" {
		t.Errorf("restricted = %v", got)
	}

	// GRAPH inside EXISTS (snapshot path).
	got = runQueryOn(t, src, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  ?s ex:p ?v
  FILTER EXISTS { GRAPH <http://example.org/doc1> { ?s ex:p ?v } }
}`)
	if len(got) != 1 || got[0]["s"].Value != "http://a" {
		t.Errorf("exists graph = %v", got)
	}

	// Shared graph variable joins triples from the same document.
	src2 := store.New()
	src2.Add(rdf.NewTriple(rdf.NewIRI("http://x"), p, rdf.NewLiteral("1")), d1)
	src2.Add(rdf.NewTriple(rdf.NewIRI("http://x"), rdf.NewIRI("http://example.org/q"), rdf.NewLiteral("2")), d2)
	src2.Close()
	got = runQueryOn(t, src2, `
PREFIX ex: <http://example.org/>
SELECT ?g WHERE { GRAPH ?g { ?s ex:p ?v . ?s ex:q ?w } }`)
	if len(got) != 0 {
		t.Errorf("cross-document join inside one GRAPH should be empty: %v", got)
	}
}

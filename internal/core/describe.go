package core

import (
	"context"
	"errors"

	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// Describe runs a DESCRIBE query: the WHERE pattern (if any) is evaluated
// by traversal, and each described resource is rendered as its concise
// bounded description (CBD) over all traversed data — the resource's
// outgoing triples, expanded recursively through blank nodes.
func (e *Engine) Describe(ctx context.Context, queryStr string, seeds []string) ([]rdf.Triple, error) {
	x, err := e.Query(ctx, queryStr, seeds)
	if err != nil {
		return nil, err
	}
	if x.Query.Form != sparql.FormDescribe {
		x.Close()
		return nil, errors.New("core: Describe requires a DESCRIBE query")
	}

	// Collect the described resources: constants plus variable bindings
	// from the WHERE evaluation.
	resources := map[rdf.Term]bool{}
	var vars []string
	for _, d := range x.Query.Describe {
		if d.IsVar() {
			vars = append(vars, d.Value)
		} else {
			resources[d] = true
		}
	}
	describeAll := len(x.Query.Describe) == 0 // DESCRIBE *
	for b := range x.Results {
		if describeAll {
			for _, v := range b.Vars() {
				resources[b[v]] = true
			}
			continue
		}
		for _, v := range vars {
			if t, ok := b.Get(v); ok {
				resources[t] = true
			}
		}
	}
	if err := x.Err(); err != nil {
		return nil, err
	}
	// The descriptions are computed over the *complete* traversed store.
	if err := x.store.WaitClosed(ctx); err != nil {
		return nil, err
	}
	defer x.Close()

	// CBD over the traversed store.
	out := rdf.NewGraph()
	seenBlank := map[rdf.Term]bool{}
	var expand func(t rdf.Term)
	expand = func(t rdf.Term) {
		for _, tr := range x.store.MatchNow(rdf.NewTriple(t, rdf.NewVar("p"), rdf.NewVar("o"))) {
			if out.Add(tr) && tr.O.IsBlank() && !seenBlank[tr.O] {
				seenBlank[tr.O] = true
				expand(tr.O)
			}
		}
	}
	for r := range resources {
		if r.IsIRI() || r.IsBlank() {
			expand(r)
		}
	}
	return out.Triples(), nil
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// MetricsHandler serves the registry in Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// HealthHandler serves a trivial liveness probe.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"time\":%q}\n", time.Now().UTC().Format(time.RFC3339Nano))
	})
}

// querySummaryJSON is the /debug/queries wire format for one query.
type querySummaryJSON struct {
	ID         int64     `json:"id"`
	Query      string    `json:"query"`
	Seeds      []string  `json:"seeds,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Results    int       `json:"results"`
	Done       bool      `json:"done"`
	Err        string    `json:"error,omitempty"`
	Trace      *SpanJSON `json:"trace,omitempty"`
}

func summarize(r *QueryRecord, withTrace bool) querySummaryJSON {
	out := querySummaryJSON{
		ID:         r.ID,
		Query:      r.Query,
		Seeds:      r.Seeds,
		Start:      r.Start,
		DurationMS: float64(r.Duration().Microseconds()) / 1000,
		Results:    r.Results(),
		Done:       r.Done(),
		Err:        r.Err(),
	}
	if withTrace && r.Trace != nil && r.Trace.Root() != nil {
		root := r.Trace.Root()
		sj := root.toJSON(root.Start())
		out.Trace = &sj
	}
	return out
}

// QueriesHandler serves in-flight and recent query summaries as JSON.
// Span trees are included per query; ?trace=0 omits them, and
// ?id=N&format=tree renders one query's span tree as indented text.
func QueriesHandler(t *QueryTracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "tree" {
			serveTree(w, req, t)
			return
		}
		withTrace := req.URL.Query().Get("trace") != "0"
		var payload struct {
			InFlight []querySummaryJSON `json:"in_flight"`
			Recent   []querySummaryJSON `json:"recent"`
		}
		payload.InFlight = []querySummaryJSON{}
		payload.Recent = []querySummaryJSON{}
		for _, r := range t.InFlight() {
			payload.InFlight = append(payload.InFlight, summarize(r, withTrace))
		}
		for _, r := range t.Recent() {
			payload.Recent = append(payload.Recent, summarize(r, withTrace))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
}

func serveTree(w http.ResponseWriter, req *http.Request, t *QueryTracker) {
	var id int64
	fmt.Sscanf(req.URL.Query().Get("id"), "%d", &id)
	for _, r := range append(t.InFlight(), t.Recent()...) {
		if r.ID == id {
			if r.Trace == nil {
				http.Error(w, "query has no trace", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, r.Trace.Tree())
			return
		}
	}
	http.Error(w, "unknown query id", http.StatusNotFound)
}

// Register mounts the observer's exposition endpoints on mux:
// /metrics (Prometheus text), /healthz, and /debug/queries.
func (o *Observer) Register(mux *http.ServeMux) {
	if o == nil || mux == nil {
		return
	}
	mux.Handle("/metrics", MetricsHandler(o.Registry))
	mux.Handle("/healthz", HealthHandler())
	mux.Handle("/debug/queries", QueriesHandler(o.Tracker))
}

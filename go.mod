module ltqp

go 1.22

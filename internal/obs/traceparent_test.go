package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	const golden = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp, ok := ParseTraceparent(golden)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", golden)
	}
	if got := tp.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q", got)
	}
	if got := tp.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span id = %q", got)
	}
	if !tp.Sampled() {
		t.Error("sampled flag not parsed")
	}
	if got := tp.String(); got != golden {
		t.Errorf("round trip = %q, want %q", got, golden)
	}
	if got := FormatTraceparent(tp.TraceID, tp.SpanID, tp.Flags); got != golden {
		t.Errorf("FormatTraceparent = %q, want %q", got, golden)
	}
}

func TestTraceparentMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"garbage", "hello"},
		{"short", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7"},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"nonhex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"nonhex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz"},
		{"trace id too short", "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01"},
		{"span id too long", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b70-01"},
		{"wrong separators", "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01"},
		{"v00 trailing data", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"},
		{"truncated future version", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0"},
	}
	for _, c := range cases {
		if _, ok := ParseTraceparent(c.in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted malformed input", c.name, c.in)
		}
	}
}

func TestTraceparentFutureVersion(t *testing.T) {
	// Per W3C trace context, a parser handling version 00 must accept
	// higher versions, reading the fixed prefix and ignoring the rest.
	in := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-futurefield"
	tp, ok := ParseTraceparent(in)
	if !ok {
		t.Fatalf("future version rejected: %q", in)
	}
	if tp.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q", tp.TraceID)
	}
}

func TestNewIDsNonZero(t *testing.T) {
	for i := 0; i < 100; i++ {
		if NewTraceID().IsZero() {
			t.Fatal("NewTraceID returned zero")
		}
		if NewSpanID().IsZero() {
			t.Fatal("NewSpanID returned zero")
		}
	}
}

func TestSpanIDPropagation(t *testing.T) {
	ctx, tr := NewTrace(t.Context(), "query")
	root := tr.Root()
	if root.TraceID().IsZero() || root.SpanID().IsZero() {
		t.Fatal("root span has zero ids")
	}
	ctx, child := StartSpan(ctx, "document")
	_, grand := StartSpan(ctx, "attempt")
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Error("trace id not propagated to descendants")
	}
	if child.ParentID() != root.SpanID() {
		t.Error("child parent id != root span id")
	}
	if grand.ParentID() != child.SpanID() {
		t.Error("grandchild parent id != child span id")
	}
	if child.SpanID() == root.SpanID() || grand.SpanID() == child.SpanID() {
		t.Error("span ids must be unique per span")
	}
	tp := child.Traceparent()
	parsed, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("child Traceparent() = %q, not parseable", tp)
	}
	if parsed.TraceID != root.TraceID() || parsed.SpanID != child.SpanID() {
		t.Errorf("Traceparent carries wrong ids: %q", tp)
	}
	if !parsed.Sampled() {
		t.Error("in-process spans must propagate as sampled")
	}
}

func TestNewTraceWithParent(t *testing.T) {
	parent, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	_, tr := NewTraceWithParent(t.Context(), "query", parent)
	root := tr.Root()
	if root.TraceID() != parent.TraceID {
		t.Errorf("trace id not adopted from parent: %s", root.TraceID())
	}
	if root.ParentID() != parent.SpanID {
		t.Errorf("parent span id not adopted: %s", root.ParentID())
	}
	if root.SpanID() == parent.SpanID {
		t.Error("root must mint its own span id")
	}
}

func TestNilSpanTraceIDs(t *testing.T) {
	var sp *Span
	if sp.Traceparent() != "" || sp.TraceIDString() != "" {
		t.Error("nil span must render empty trace identifiers")
	}
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() {
		t.Error("nil span ids must be zero")
	}
	// An untraced context keeps the no-op behaviour.
	if _, child := StartSpan(t.Context(), "x"); child.Traceparent() != "" {
		t.Error("spans started on untraced contexts must stay untraced")
	}
}

func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x")
	f.Add("")
	f.Add(strings.Repeat("0", 55))
	f.Fuzz(func(t *testing.T, in string) {
		tp, ok := ParseTraceparent(in)
		if !ok {
			return
		}
		if tp.TraceID.IsZero() || tp.SpanID.IsZero() {
			t.Fatalf("accepted zero ids from %q", in)
		}
		// Round trip: formatting a parsed v00 header must reproduce the
		// canonical form, and reparse to the same value.
		out := tp.String()
		back, ok2 := ParseTraceparent(out)
		if !ok2 {
			t.Fatalf("canonical form %q (from %q) does not reparse", out, in)
		}
		if back != tp {
			t.Fatalf("round trip changed value: %+v != %+v (input %q)", back, tp, in)
		}
	})
}

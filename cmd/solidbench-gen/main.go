// Command solidbench-gen generates a SolidBench-style dataset — a social
// network fragmented into Solid pods — and writes it to disk as Turtle
// files plus a manifest, ready to be served by cmd/podserver. It mirrors
// the SolidBench generator used by the paper's demo environment (§4.2).
//
//	solidbench-gen --persons 64 --out ./dataset
//
// With --paper-scale the full demonstration configuration (1,531 pods) is
// generated; expect minutes of CPU time and gigabytes of output.
package main

import (
	"flag"
	"fmt"
	"os"

	"ltqp/internal/podserver"
	"ltqp/internal/solidbench"
)

func main() {
	var (
		out        = flag.String("out", "dataset", "output directory")
		persons    = flag.Int("persons", 64, "number of pods/persons")
		seed       = flag.Int64("seed", 42, "generator seed")
		host       = flag.String("host", "https://solidbench.invalid", "origin to mint pod URLs under (rebased at serve time)")
		private    = flag.Float64("private", 0, "fraction of post documents behind access control")
		paperScale = flag.Bool("paper-scale", false, "use the paper's full configuration (1,531 pods)")
		queries    = flag.Bool("queries", true, "also write the 37-query catalog to <out>/queries/")
	)
	flag.Parse()

	cfg := solidbench.DefaultConfig()
	if *paperScale {
		cfg = solidbench.PaperConfig()
	} else {
		cfg.Persons = *persons
	}
	cfg.Seed = *seed
	cfg.Host = *host
	cfg.PrivateFraction = *private

	fmt.Fprintf(os.Stderr, "generating %d pods (seed %d)...\n", cfg.Persons, cfg.Seed)
	ds := solidbench.Generate(cfg)
	pods := ds.BuildPods()
	stats := solidbench.ComputeStats(pods)
	fmt.Fprintf(os.Stderr, "dataset: %d pods, %d RDF files, %d triples (%d documents incl. containers)\n",
		stats.Pods, stats.Files, stats.Triples, stats.Documents)

	if err := podserver.SaveDir(*out, cfg.Host, pods); err != nil {
		fmt.Fprintln(os.Stderr, "solidbench-gen:", err)
		os.Exit(1)
	}
	if *queries {
		qdir := *out + "/queries"
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "solidbench-gen:", err)
			os.Exit(1)
		}
		for _, q := range ds.Catalog() {
			name := q.Name
			file := qdir + "/" + sanitize(name) + ".rq"
			if err := os.WriteFile(file, []byte("# "+name+"\n"+q.Text+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "solidbench-gen:", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d queries to %s\n", len(ds.Catalog()), qdir)
	}
	fmt.Fprintf(os.Stderr, "wrote dataset to %s\n", *out)
}

// sanitize converts a query name to a file name.
func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '.', r == ':':
			out = append(out, '-')
		}
	}
	return string(out)
}

package main

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

// TestGracefulDrain is the acceptance test for the endpoint's shutdown
// path, wired exactly as main() wires it: an in-flight query completes
// while --drain runs, new connections are refused as soon as draining
// starts, and the live /debug/events feed closes cleanly (closing comment,
// then EOF) instead of holding Shutdown hostage.
func TestGracefulDrain(t *testing.T) {
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	// Enough simulated latency that the query is still traversing when
	// shutdown begins.
	env.PodServer.Latency = 30 * time.Millisecond

	observer := ltqp.NewObserver()
	h := NewHandler(ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true, Obs: observer}), time.Minute)
	srv := &http.Server{Handler: buildMux(h, observer)}
	srv.RegisterOnShutdown(observer.Stream.Shutdown)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Attach a live event stream and collect everything it delivers.
	sseResp, err := http.Get(base + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if sseResp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events status = %d", sseResp.StatusCode)
	}
	sseLines := make(chan []string, 1)
	go func() {
		var lines []string
		r := bufio.NewReader(sseResp.Body)
		for {
			line, err := r.ReadString('\n')
			if line != "" {
				lines = append(lines, strings.TrimRight(line, "\n"))
			}
			if err != nil { // EOF once the server closes the drained stream
				sseLines <- lines
				return
			}
		}
	}()

	// Fire the in-flight query.
	q := env.Dataset.Discover(1, 1)
	type reply struct {
		status int
		body   string
		err    error
	}
	qc := make(chan reply, 1)
	go func() {
		resp, err := http.Get(base + "/sparql?query=" + url.QueryEscape(q.Text))
		if err != nil {
			qc <- reply{err: err}
			return
		}
		var b strings.Builder
		r := bufio.NewReader(resp.Body)
		r.WriteTo(&b)
		resp.Body.Close()
		qc <- reply{status: resp.StatusCode, body: b.String()}
	}()

	// Wait until the engine is actually executing it.
	deadline := time.Now().Add(5 * time.Second)
	for observer.Metrics.QueriesInFlight.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if observer.Metrics.QueriesInFlight.Value() == 0 {
		t.Fatal("query never became in-flight")
	}

	// Begin draining mid-query.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// New queries are refused once draining starts: the listener closes, so
	// fresh connections fail.
	refused := false
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		conn.Close()
		time.Sleep(time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted while draining")
	}

	// The in-flight query completes successfully during the drain.
	select {
	case r := <-qc:
		if r.err != nil {
			t.Fatalf("in-flight query failed: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Errorf("in-flight query status = %d", r.status)
		}
		if !strings.Contains(r.body, "bindings") {
			t.Errorf("in-flight query body = %s", truncateStr(r.body, 200))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query did not complete during drain")
	}

	// Shutdown finishes inside the budget — nothing held it hostage.
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not return")
	}

	// The event stream saw the query live and closed cleanly.
	select {
	case lines := <-sseLines:
		joined := strings.Join(lines, "\n")
		if !strings.Contains(joined, "event: query_started") {
			t.Errorf("event stream missing query_started:\n%s", truncateStr(joined, 400))
		}
		closing := false
		for _, l := range lines {
			if strings.HasPrefix(l, ": closing") {
				closing = true
			}
		}
		if !closing {
			t.Errorf("event stream ended without closing comment:\n%s", truncateStr(joined, 400))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event stream did not reach EOF after drain")
	}
}

package linkqueue

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://host/x", "http://host/x"},
		{"HTTP://Host/x", "http://host/x"},
		{"http://host:80/x", "http://host/x"},
		{"HTTP://HOST:80/x", "http://host/x"},
		{"https://host:443/x", "https://host/x"},
		{"https://host:8443/x", "https://host:8443/x"},
		{"http://host:8080/x", "http://host:8080/x"},
		// Paths are case-sensitive and must survive byte-exact.
		{"http://host/Path/To%2FDoc", "http://host/Path/To%2FDoc"},
		{"HTTPS://example.ORG:443/Pods/00#frag", "https://example.org/Pods/00#frag"},
		// Unparseable input comes back unchanged.
		{"::not a url::", "::not a url::"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOrigin(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://host/a/b", "http://host"},
		{"HTTP://Host:80/a", "http://host"},
		{"https://Pod.Example:443/c", "https://pod.example"},
		{"http://host:8080/a", "http://host:8080"},
		{"::nope::", "invalid://"},
	}
	for _, c := range cases {
		if got := Origin(c.in); got != c.want {
			t.Errorf("Origin(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Every queue discipline must collapse scheme/host-case and default-port
// aliases into one entry — the loop/spoofing defense.
func TestDedupNormalizesAliases(t *testing.T) {
	for _, q := range []Queue{NewFIFO(), NewPriority(nil), NewGuided(nil)} {
		if !q.Push(Link{URL: "http://pod.example/doc", Reason: "seed"}) {
			t.Fatalf("%T: first push rejected", q)
		}
		for _, alias := range []string{
			"HTTP://pod.example/doc",
			"http://POD.EXAMPLE/doc",
			"http://pod.example:80/doc",
			"HTTP://Pod.Example:80/doc",
		} {
			if q.Push(Link{URL: alias, Reason: "see-also"}) {
				t.Errorf("%T: alias %q not deduplicated", q, alias)
			}
		}
		if q.Seen() != 1 || q.Len() != 1 {
			t.Errorf("%T: Seen = %d, Len = %d, want 1, 1", q, q.Seen(), q.Len())
		}
	}
}

func TestGuidedScoring(t *testing.T) {
	rel := NewRelevance([]string{"http://pods/alice/profile/card#me"})
	q := NewGuided(rel)

	mentioned := Link{URL: "http://pods/alice/profile/card", Reason: "see-also"}
	plain := Link{URL: "http://pods/alice/other", Reason: "see-also"}
	if qs, ps := q.Score(mentioned), q.Score(plain); qs <= ps {
		t.Errorf("query-mentioned link scored %v, plain %v; want mentioned higher", qs, ps)
	}

	typeIndex := Link{URL: "http://pods/alice/settings/publicTypeIndex", Reason: "type-index"}
	container := Link{URL: "http://pods/alice/comments/", Reason: "ldp-container"}
	if ts, cs := q.Score(typeIndex), q.Score(container); ts <= cs {
		t.Errorf("type-index scored %v, container %v; want type-index higher", ts, cs)
	}

	// Productivity feedback boosts links discovered in productive documents.
	before := q.Score(Link{URL: "http://pods/alice/a", Via: "http://pods/alice/posts/1", Reason: "see-also"})
	q.DocumentIngested("http://pods/alice/posts/1", 8, 10)
	after := q.Score(Link{URL: "http://pods/alice/b", Via: "http://pods/alice/posts/1", Reason: "see-also"})
	if after <= before {
		t.Errorf("productivity boost missing: before %v, after %v", before, after)
	}
	// Feedback is keyed on normalized URLs, like dedup.
	alias := q.Score(Link{URL: "http://pods/alice/c", Via: "HTTP://PODS/alice/posts/1", Reason: "see-also"})
	if alias <= before {
		t.Errorf("productivity boost must survive Via aliasing: %v <= %v", alias, before)
	}

	// Depth penalty: shallow beats deep at equal relevance.
	shallow := q.Score(Link{URL: "http://pods/alice/s", Reason: "match", Depth: 1})
	deep := q.Score(Link{URL: "http://pods/alice/d", Reason: "match", Depth: 9})
	if shallow <= deep {
		t.Errorf("depth penalty missing: shallow %v, deep %v", shallow, deep)
	}
}

func TestGuidedPopsBestScoreFirstWithinOrigin(t *testing.T) {
	q := NewGuided(nil)
	q.Push(Link{URL: "http://one/all", Reason: "all"})
	q.Push(Link{URL: "http://one/type-index", Reason: "type-index"})
	q.Push(Link{URL: "http://one/container", Reason: "ldp-container"})
	q.Push(Link{URL: "http://one/match", Reason: "match"})
	var order []string
	for {
		l, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, l.URL)
	}
	want := "[http://one/type-index http://one/match http://one/container http://one/all]"
	if fmt.Sprint(order) != want {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestGuidedRoundRobinAcrossOrigins(t *testing.T) {
	q := NewGuided(nil)
	// Origin "bomb" floods the queue with high-scoring links before "quiet"
	// gets a single low-score link in; fairness must still alternate.
	for i := 0; i < 10; i++ {
		q.Push(Link{URL: fmt.Sprintf("http://bomb/doc%d", i), Reason: "type-index"})
	}
	q.Push(Link{URL: "http://quiet/doc", Reason: "all"})
	var origins []string
	for i := 0; i < 3; i++ {
		l, ok := q.Pop()
		if !ok {
			t.Fatal("queue empty early")
		}
		origins = append(origins, Origin(l.URL))
	}
	// Within the first full round-robin cycle both origins must appear.
	if origins[0] == origins[1] {
		t.Errorf("first two pops from one origin: %v", origins)
	}
}

// The property the guided queue must never break: ordering is a permutation.
// Whatever the scores do, the set of links popped equals the set of links
// FIFO pops for the same push sequence — so results cannot change, only
// arrival order (the differential-oracle property of ISSUE satellite 2).
func TestGuidedIsPermutationOfFIFO(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reasons := []string{"seed", "type-index", "match", "ldp-container", "see-also", "all", "weird"}
		fifo, guided := NewFIFO(), NewGuided(NewRelevance([]string{"http://h0/doc3#me"}))
		n := 5 + rng.Intn(120)
		for i := 0; i < n; i++ {
			l := Link{
				URL:    fmt.Sprintf("http://h%d/doc%d", rng.Intn(4), rng.Intn(40)),
				Via:    fmt.Sprintf("http://h%d/doc%d", rng.Intn(4), rng.Intn(40)),
				Reason: reasons[rng.Intn(len(reasons))],
				Depth:  rng.Intn(6),
			}
			if rng.Intn(3) == 0 {
				guided.DocumentIngested(l.Via, rng.Intn(10), 10)
			}
			a, b := fifo.Push(l), guided.Push(l)
			if a != b {
				t.Errorf("push accept mismatch for %+v: fifo %v, guided %v", l, a, b)
				return false
			}
		}
		if fifo.Len() != guided.Len() || fifo.Seen() != guided.Seen() {
			t.Errorf("Len/Seen mismatch: fifo %d/%d, guided %d/%d",
				fifo.Len(), fifo.Seen(), guided.Len(), guided.Seen())
			return false
		}
		fset, gset := map[string]bool{}, map[string]bool{}
		for {
			l, ok := fifo.Pop()
			if !ok {
				break
			}
			fset[l.URL] = true
		}
		for {
			l, ok := guided.Pop()
			if !ok {
				break
			}
			gset[l.URL] = true
		}
		if len(fset) != len(gset) {
			t.Errorf("popped %d from fifo, %d from guided", len(fset), len(gset))
			return false
		}
		for u := range fset {
			if !gset[u] {
				t.Errorf("guided never popped %q", u)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Per-origin fairness property: in any window of consecutive pops, no origin
// is served more than one pop ahead of a still-backlogged origin's share.
func TestGuidedFairnessProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewGuided(nil)
		origins := 2 + rng.Intn(4)
		perOrigin := make([]int, origins)
		for i := 0; i < origins; i++ {
			perOrigin[i] = 1 + rng.Intn(30)
			for j := 0; j < perOrigin[i]; j++ {
				q.Push(Link{URL: fmt.Sprintf("http://origin%d/d%d", i, j), Reason: "see-also"})
			}
		}
		served := make([]int, origins)
		for {
			l, ok := q.Pop()
			if !ok {
				break
			}
			var idx int
			fmt.Sscanf(Origin(l.URL), "http://origin%d", &idx)
			served[idx]++
			// While some origin still has a backlog, no other origin may
			// be ahead of it by more than one round.
			for i := 0; i < origins; i++ {
				if served[i] < perOrigin[i] { // i still backlogged
					for j := 0; j < origins; j++ {
						if served[j] > served[i]+1 {
							t.Errorf("origin %d served %d while backlogged origin %d has %d",
								j, served[j], i, served[i])
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyFIFO, true},
		{"fifo", PolicyFIFO, true},
		{"reason", PolicyReason, true},
		{"guided", PolicyGuided, true},
		{"bogus", "", false},
	} {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePolicy(%q) = %q, %v", c.in, got, err)
		}
	}
	for _, p := range []Policy{PolicyFIFO, PolicyReason, PolicyGuided, Policy("")} {
		if q := p.New(nil); q == nil {
			t.Errorf("%q.New returned nil", p)
		}
	}
}

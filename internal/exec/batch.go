// Vectorized execution core: operators exchange *Batch values — fixed-size
// collections of solution rows laid out as columnar slabs of dictionary term
// IDs — instead of one rdf.Binding per channel send. A batch carries its own
// variable schema (one column per variable), an optional selection vector
// (filters narrow batches without copying), and an optional parallel
// provenance column (per-row source-document ID sets), so Result.Explain()
// is unchanged when batches flow through the pipeline.
//
// The row-at-a-time operators in exec.go remain the reference semantics:
// every vectorized operator is pinned against them by the property-based
// suite (batch_prop_test.go), the differential harness
// (internal/baseline), and FuzzBatchSelection.
package exec

import (
	"context"
	"sync"

	"ltqp/internal/rdf"
	"ltqp/internal/resource"
)

const (
	// batchCap is the maximum number of rows per batch. Scans fill batches
	// greedily with whatever the store has available, so first results are
	// never delayed waiting for a batch to fill.
	batchCap = 1024
	// batchChanCap is the buffer size of inter-operator batch channels.
	batchChanCap = 4
	// morselSize is the number of rows a worker claims per steal when a
	// join probe or grouping phase runs morsel-parallel.
	morselSize = 256
	// morselMinRows is the row count below which morsel phases stay
	// sequential: spinning up workers for a near-empty batch costs more
	// than it saves.
	morselMinRows = 2 * morselSize
)

// Batch is one unit of vectorized execution: up to batchCap solution rows
// over a fixed variable schema, stored column-wise as dictionary term IDs.
// NoTerm (0) in a column means the variable is unbound in that row — the
// same UNDEF sentinel the ID-keyed join/DISTINCT layer already uses.
//
// A batch is owned by exactly one consumer at a time: operators either
// mutate it in place (narrowing sel, appending a BIND column) and forward
// it, or copy what they need and release it to the pool.
type Batch struct {
	// vars is the schema: one entry per column. Operators must never
	// mutate it in place — it is shared between batches of one stream.
	vars []string
	// cols holds one slab per schema variable; each slab has n entries.
	cols [][]rdf.TermID
	// sel is the selection vector: physical indexes of the live rows, in
	// order. nil means all n rows are live. Indexes may be sparse and, at
	// API boundaries (fuzzed), out of order — but never duplicated: a
	// physical row is live at most once (BIND updates columns in place, so
	// an aliased row would observe its duplicate's write).
	sel []int32
	// prov, when non-nil, parallels the rows: prov[i] is the set of
	// source-document term IDs row i descends from. nil when provenance
	// is disabled (the default — zero cost).
	prov [][]rdf.TermID
	// n is the number of physical rows.
	n int
	// selbuf is the recycled backing slab operators write fresh selection
	// vectors into; it survives pooling even though sel itself is reset.
	selbuf []int32
	// lg, when non-nil, is the resource ledger the batch's slab capacity is
	// charged against (lgBytes under resource.Exec); putBatch releases the
	// charge. Batches acquired through Env.getBatch carry it downstream even
	// across operator handoffs, so in-flight buffered rows stay accounted.
	lg      *resource.Ledger
	lgBytes int64
}

const (
	// termIDBytes is the ledger cost of one column cell (rdf.TermID).
	termIDBytes = 4
	// provRefBytes is the ledger cost of one provenance row reference (a
	// slice header pointing into shared source-ID sets).
	provRefBytes = 24
)

// selSlab returns the batch's recycled selection slab, empty, for an
// operator about to build a selection vector from scratch.
func (b *Batch) selSlab() []int32 {
	if b.selbuf == nil {
		b.selbuf = make([]int32, 0, batchCap)
	}
	b.selbuf = b.selbuf[:0]
	return b.selbuf
}

// colSlab returns an empty column slab for a schema-extending operator
// (BIND), recovering a pooled slab parked beyond len(cols) when one exists.
func (b *Batch) colSlab() []rdf.TermID {
	if n := len(b.cols); cap(b.cols) > n {
		if s := b.cols[:n+1][n]; s != nil {
			return s[:0]
		}
	}
	return make([]rdf.TermID, 0, batchCap)
}

// BatchStream is a channel of batches produced by a vectorized operator.
type BatchStream <-chan *Batch

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// Row returns the physical index of the i-th live row.
func (b *Batch) Row(i int) int32 {
	if b.sel != nil {
		return b.sel[i]
	}
	return int32(i)
}

// col returns the column index of a variable in the schema, or -1.
func (b *Batch) col(v string) int {
	for i, name := range b.vars {
		if name == v {
			return i
		}
	}
	return -1
}

// appendRow adds one physical row given one ID per schema column; prov may
// be nil. It returns the new physical row index.
func (b *Batch) appendRow(ids []rdf.TermID, prov []rdf.TermID) int {
	for c := range b.cols {
		b.cols[c] = append(b.cols[c], ids[c])
	}
	if b.prov != nil {
		b.prov = append(b.prov, prov)
	}
	i := b.n
	b.n++
	return i
}

// batchPool recycles batch shells and their column slabs. Steady-state
// vectorized execution allocates (almost) nothing per batch: shells cycle
// between producers and the decode boundary.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// getBatch returns an empty batch over the given schema. withProv
// preallocates the provenance column.
func getBatch(vars []string, withProv bool) *Batch {
	b := batchPool.Get().(*Batch)
	b.vars = vars
	if cap(b.cols) < len(vars) {
		old := b.cols[:cap(b.cols)]
		b.cols = make([][]rdf.TermID, len(vars))
		copy(b.cols, old)
	} else {
		b.cols = b.cols[:len(vars)]
	}
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.sel = nil
	b.n = 0
	if withProv {
		if b.prov == nil {
			b.prov = make([][]rdf.TermID, 0, batchCap)
		} else {
			b.prov = b.prov[:0]
		}
	} else {
		b.prov = nil
	}
	return b
}

// getBatch returns an empty batch over the given schema with its slab
// capacity charged to the environment's resource ledger (resource.Exec);
// putBatch releases the charge wherever the batch ends up. This is the
// acquisition path for all operator-built batches — the package-level
// getBatch stays uncharged for ledger-less tests.
func (e *Env) getBatch(vars []string, withProv bool) *Batch {
	b := getBatch(vars, withProv)
	if e != nil && e.Ledger != nil {
		n := int64(len(vars)) * batchCap * termIDBytes
		if withProv {
			n += batchCap * provRefBytes
		}
		e.Ledger.Charge(resource.Exec, n)
		b.lg, b.lgBytes = e.Ledger, n
	}
	return b
}

// putBatch releases a batch to the pool (and its ledger charge, when one is
// attached). The caller must not touch it afterwards.
func putBatch(b *Batch) {
	if b == nil {
		return
	}
	if b.lg != nil {
		b.lg.Release(resource.Exec, b.lgBytes)
		b.lg, b.lgBytes = nil, 0
	}
	b.vars = nil
	b.sel = nil
	for i := range b.prov {
		b.prov[i] = nil
	}
	b.prov = b.prov[:0]
	b.n = 0
	batchPool.Put(b)
}

// sendBatch delivers b unless the context is cancelled; it reports success.
// On failure the batch is released — the caller must not use it again.
func sendBatch(ctx context.Context, out chan<- *Batch, b *Batch) bool {
	select {
	case out <- b:
		return true
	case <-ctx.Done():
		putBatch(b)
		return false
	}
}

// sameVars reports whether two schemas are identical.
func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// schemaMap returns, for every variable of to, its column index in from or
// -1 when absent.
func schemaMap(from, to []string) []int {
	m := make([]int, len(to))
	for i, v := range to {
		m[i] = -1
		for j, w := range from {
			if w == v {
				m[i] = j
				break
			}
		}
	}
	return m
}

// batchesToRows decodes a batch stream back into the binding representation
// at the pipeline boundary: IDs become terms only here, after every
// vectorized operator has run on integers.
func batchesToRows(ctx context.Context, env *Env, in BatchStream) Stream {
	out := make(chan rdf.Binding, chanCap)
	go func() {
		defer close(out)
		for {
			select {
			case b, ok := <-in:
				if !ok {
					return
				}
				for li := 0; li < b.Len(); li++ {
					r := b.Row(li)
					bind := make(rdf.Binding, len(b.vars))
					for c, v := range b.vars {
						if id := b.cols[c][r]; id != rdf.NoTerm {
							bind[v] = env.dict.Decode(id)
						}
					}
					if b.prov != nil {
						for _, src := range b.prov[r] {
							t := env.dict.Decode(src)
							bind[rdf.ProvKey(t.Value)] = t
						}
					}
					if !send(ctx, out, bind) {
						putBatch(b)
						return
					}
				}
				putBatch(b)
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// rowsToBatches bridges a row stream into batches: the adapter vectorized
// operators use to consume a non-vectorized child (blocking operators,
// VALUES, paths). Rows are interned into columns per schema; a schema
// change, a full batch, or an input stall flushes — stall-flushing keeps
// the pipeline's first-result latency at row granularity even though the
// transport is batched.
func rowsToBatches(ctx context.Context, env *Env, in Stream) BatchStream {
	out := make(chan *Batch, batchChanCap)
	go func() {
		defer close(out)
		var cur *Batch
		var curVars []string
		flush := func() bool {
			if cur == nil {
				return true
			}
			b := cur
			cur = nil
			if b.Len() == 0 {
				putBatch(b)
				return true
			}
			return sendBatch(ctx, out, b)
		}
		add := func(bind rdf.Binding) bool {
			vars := bind.Vars()
			if cur != nil && !sameVars(curVars, vars) {
				if !flush() {
					return false
				}
			}
			if cur == nil {
				curVars = vars
				cur = env.getBatch(curVars, env.Prov != nil)
			}
			for c, v := range curVars {
				var id rdf.TermID
				if t, ok := bind[v]; ok {
					id = env.dict.Intern(t)
				}
				cur.cols[c] = append(cur.cols[c], id)
			}
			if cur.prov != nil {
				cur.prov = append(cur.prov, bind.SourceIDs(env.dict))
			}
			cur.n++
			if cur.n >= batchCap {
				return flush()
			}
			return true
		}
		for {
			select {
			case bind, ok := <-in:
				if !ok {
					flush()
					return
				}
				if !add(bind) {
					return
				}
			default:
				if !flush() {
					return
				}
				select {
				case bind, ok := <-in:
					if !ok {
						return
					}
					if !add(bind) {
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

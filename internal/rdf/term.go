// Package rdf provides the RDF 1.1 data model used throughout the engine:
// terms (IRIs, literals, blank nodes, and query variables), triples, quads,
// solution bindings, and the common vocabularies of the Solid ecosystem.
//
// The model follows RDF 1.1 Concepts and Abstract Syntax. Query variables are
// modelled as a fourth term kind so that triple patterns and data triples
// share one representation, which keeps the traversal engine, the SPARQL
// algebra, and the stores simple.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the four kinds of terms handled by the engine.
type TermKind uint8

const (
	// TermUndef is the zero value; it marks an absent/unbound term.
	TermUndef TermKind = iota
	// TermIRI is an IRI reference (RDF 1.1 §3.2).
	TermIRI
	// TermLiteral is a literal with lexical form, datatype and optional
	// language tag (RDF 1.1 §3.3).
	TermLiteral
	// TermBlank is a blank node with a document-scoped label (RDF 1.1 §3.4).
	TermBlank
	// TermVar is a SPARQL query variable. Variables never occur in data,
	// only in patterns.
	TermVar
)

// String returns a human-readable kind name, used in error messages.
func (k TermKind) String() string {
	switch k {
	case TermUndef:
		return "undef"
	case TermIRI:
		return "iri"
	case TermLiteral:
		return "literal"
	case TermBlank:
		return "blank"
	case TermVar:
		return "variable"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term or SPARQL variable. The zero value is the undefined
// term, which is reported by IsZero and compares equal only to itself.
//
// Terms are immutable value types: they are copied freely, used as map keys,
// and compared with ==. For literals, Value holds the lexical form, Datatype
// the datatype IRI (empty means xsd:string, per RDF 1.1 simple literals), and
// Language the language tag (which forces rdf:langString).
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Language string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: TermIRI, Value: iri} }

// NewLiteral returns a simple literal (xsd:string).
func NewLiteral(lex string) Term { return Term{Kind: TermLiteral, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: TermLiteral, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal (rdf:langString). Language
// tags are case-insensitive in RDF; they are canonicalized to lower case.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: TermLiteral, Value: lex, Language: strings.ToLower(lang)}
}

// NewBlank returns a blank node with the given label (without "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: TermBlank, Value: label} }

// NewVar returns a query variable with the given name (without "?" prefix).
func NewVar(name string) Term { return Term{Kind: TermVar, Value: name} }

// Integer returns an xsd:integer literal.
func Integer(v int64) Term {
	return Term{Kind: TermLiteral, Value: fmt.Sprintf("%d", v), Datatype: XSDInteger}
}

// Long returns an xsd:long literal, the datatype LDBC SNB uses for ids.
func Long(v int64) Term {
	return Term{Kind: TermLiteral, Value: fmt.Sprintf("%d", v), Datatype: XSDLong}
}

// Double returns an xsd:double literal.
func Double(v float64) Term {
	return Term{Kind: TermLiteral, Value: formatFloat(v), Datatype: XSDDouble}
}

// Boolean returns an xsd:boolean literal.
func Boolean(v bool) Term {
	if v {
		return Term{Kind: TermLiteral, Value: "true", Datatype: XSDBoolean}
	}
	return Term{Kind: TermLiteral, Value: "false", Datatype: XSDBoolean}
}

// IsZero reports whether t is the undefined (zero) term.
func (t Term) IsZero() bool { return t.Kind == TermUndef }

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == TermIRI }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == TermLiteral }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == TermBlank }

// IsVar reports whether t is a query variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

// DatatypeIRI returns the effective datatype IRI of a literal: the explicit
// datatype, rdf:langString for language-tagged literals, or xsd:string.
// It returns "" for non-literals.
func (t Term) DatatypeIRI() string {
	if t.Kind != TermLiteral {
		return ""
	}
	if t.Language != "" {
		return RDFLangString
	}
	if t.Datatype == "" {
		return XSDString
	}
	return t.Datatype
}

// Equal reports whether two terms are identical per RDF term equality.
func (t Term) Equal(o Term) bool { return t == o }

// String renders the term in N-Triples/SPARQL surface syntax. It is intended
// for debugging, test output, and serializers of line-based formats.
func (t Term) String() string {
	switch t.Kind {
	case TermIRI:
		return "<" + t.Value + ">"
	case TermLiteral:
		var b strings.Builder
		b.WriteByte('"')
		escapeLiteral(&b, t.Value)
		b.WriteByte('"')
		if t.Language != "" {
			b.WriteByte('@')
			b.WriteString(t.Language)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	case TermBlank:
		return "_:" + t.Value
	case TermVar:
		return "?" + t.Value
	default:
		return "UNDEF"
	}
}

// escapeLiteral writes lex with N-Triples string escapes into b.
func escapeLiteral(b *strings.Builder, lex string) {
	for _, r := range lex {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// formatFloat renders a float64 in a form acceptable as an xsd:double
// lexical value.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// Compare imposes a total order over terms, used by ORDER BY and DISTINCT
// canonicalization. The order follows the SPARQL 1.1 ordering extended to a
// total order: Undef < Blank < IRI < Literal; within a kind, terms order by
// their components. Numeric comparison of literals is handled at the
// expression layer; this is the tie-breaking syntactic order.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		return int(kindOrder(t.Kind)) - int(kindOrder(o.Kind))
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Language, o.Language)
}

func kindOrder(k TermKind) uint8 {
	switch k {
	case TermUndef:
		return 0
	case TermBlank:
		return 1
	case TermIRI:
		return 2
	case TermLiteral:
		return 3
	case TermVar:
		return 4
	default:
		return 5
	}
}

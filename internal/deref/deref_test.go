package deref

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ltqp/internal/metrics"
	"ltqp/internal/rdf"
)

func newServer(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts
}

func TestDereferenceTurtle(t *testing.T) {
	var gotAccept string
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		gotAccept = r.Header.Get("Accept")
		w.Header().Set("Content-Type", "text/turtle; charset=utf-8")
		w.Write([]byte(`<#me> <http://xmlns.com/foaf/0.1/name> "Alice" . <rel> <http://p> <http://o> .`))
	})
	d := &Dereferencer{Client: ts.Client(), Recorder: metrics.NewRecorder()}
	res, err := d.Dereference(context.Background(), ts.URL+"/card", "", "seed")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gotAccept, "text/turtle") {
		t.Errorf("Accept = %s", gotAccept)
	}
	if len(res.Triples) != 2 {
		t.Fatalf("triples = %v", res.Triples)
	}
	// Relative IRIs resolve against the final URL.
	if res.Triples[0].S != rdf.NewIRI(ts.URL+"/card#me") {
		t.Errorf("subject = %v", res.Triples[0].S)
	}
	if res.Triples[1].S != rdf.NewIRI(ts.URL+"/rel") {
		t.Errorf("relative subject = %v", res.Triples[1].S)
	}
	// Metrics recorded.
	reqs := d.Recorder.Requests()
	if len(reqs) != 1 || reqs[0].Triples != 2 || reqs[0].Status != 200 {
		t.Errorf("metrics = %+v", reqs)
	}
}

func TestDereferenceStatusError(t *testing.T) {
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	})
	rec := metrics.NewRecorder()
	d := &Dereferencer{Client: ts.Client(), Recorder: rec}
	_, err := d.Dereference(context.Background(), ts.URL+"/missing", "", "match")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("err = %v", err)
	}
	reqs := rec.Requests()
	if len(reqs) != 1 || reqs[0].Err == "" {
		t.Errorf("failure not recorded: %+v", reqs)
	}
}

func TestDereferenceParseError(t *testing.T) {
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte("this is not turtle @@@"))
	})
	d := &Dereferencer{Client: ts.Client()}
	if _, err := d.Dereference(context.Background(), ts.URL, "", "seed"); err == nil {
		t.Error("parse error expected")
	}
}

func TestDereferenceUnsupportedContentType(t *testing.T) {
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.Write([]byte("<html></html>"))
	})
	d := &Dereferencer{Client: ts.Client()}
	if _, err := d.Dereference(context.Background(), ts.URL, "", "seed"); err == nil {
		t.Error("content-type error expected")
	}
}

func TestDereferenceAuthHeaders(t *testing.T) {
	var auth, webid string
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		auth = r.Header.Get("Authorization")
		webid = r.Header.Get("X-WebID")
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(""))
	})
	d := &Dereferencer{
		Client: ts.Client(),
		Auth:   &Credentials{WebID: "https://me.example/card#me", Token: "sig:https://me.example/card#me"},
	}
	if _, err := d.Dereference(context.Background(), ts.URL, "", "seed"); err != nil {
		t.Fatal(err)
	}
	if auth != "Bearer sig:https://me.example/card#me" || webid != "https://me.example/card#me" {
		t.Errorf("auth headers = %q / %q", auth, webid)
	}
}

func TestDereferenceBlankNodeScoping(t *testing.T) {
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(`_:b <http://p> "v" .`))
	})
	d := &Dereferencer{Client: ts.Client()}
	r1, err := d.Dereference(context.Background(), ts.URL+"/d1", "", "seed")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Dereference(context.Background(), ts.URL+"/d2", "", "seed")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Triples[0].S == r2.Triples[0].S {
		t.Errorf("blank nodes from different documents must not collide: %v", r1.Triples[0].S)
	}
}

func TestDereferenceRedirect(t *testing.T) {
	var ts *httptest.Server
	ts = newServer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/old" {
			http.Redirect(w, r, ts.URL+"/new", http.StatusFound)
			return
		}
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(`<doc> <http://p> <http://o> .`))
	})
	d := &Dereferencer{Client: ts.Client()}
	res, err := d.Dereference(context.Background(), ts.URL+"/old", "", "seed")
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalURL != ts.URL+"/new" {
		t.Errorf("FinalURL = %s", res.FinalURL)
	}
	// Relative IRIs resolve against the final (post-redirect) URL.
	if res.Triples[0].S != rdf.NewIRI(ts.URL+"/doc") {
		t.Errorf("subject = %v", res.Triples[0].S)
	}
}

func TestDereferenceContextCancelled(t *testing.T) {
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	d := &Dereferencer{Client: ts.Client()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Dereference(ctx, ts.URL, "", "seed"); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestCacheServesRepeatDereferences(t *testing.T) {
	hits := 0
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(`<#me> <http://p> "v" .`))
	})
	d := &Dereferencer{Client: ts.Client(), Cache: NewCache(10), Recorder: metrics.NewRecorder()}
	for i := 0; i < 3; i++ {
		res, err := d.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Triples) != 1 {
			t.Fatalf("triples = %d", len(res.Triples))
		}
	}
	if hits != 1 {
		t.Errorf("server hits = %d, want 1", hits)
	}
	cacheHits, misses := d.Cache.Stats()
	if cacheHits != 2 || misses != 1 {
		t.Errorf("cache stats = %d hits, %d misses", cacheHits, misses)
	}
	// Cached requests are marked in the metrics.
	cached := 0
	for _, r := range d.Recorder.Requests() {
		if r.Cached {
			cached++
		}
	}
	if cached != 2 {
		t.Errorf("cached metric rows = %d", cached)
	}
}

func TestCacheKeyIncludesIdentity(t *testing.T) {
	hits := 0
	ts := newServer(t, func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Content-Type", "text/turtle")
		w.Write([]byte(``))
	})
	cache := NewCache(10)
	anon := &Dereferencer{Client: ts.Client(), Cache: cache}
	alice := &Dereferencer{Client: ts.Client(), Cache: cache,
		Auth: &Credentials{WebID: "https://a/#me", Token: "sig:https://a/#me"}}
	anon.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
	alice.Dereference(context.Background(), ts.URL+"/doc", "", "seed")
	if hits != 2 {
		t.Errorf("identity-scoped keys: server hits = %d, want 2", hits)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	c.put(&cacheEntry{key: "a"})
	c.put(&cacheEntry{key: "b"})
	c.put(&cacheEntry{key: "a"}) // refresh a
	c.put(&cacheEntry{key: "c"}) // evicts b (LRU)
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	if _, ok := c.get("b"); ok {
		t.Error("b should be evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive")
	}
	if NewCache(0).cap != 1 {
		t.Error("minimum capacity")
	}
}

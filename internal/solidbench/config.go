// Package solidbench reproduces the SolidBench benchmark environment the
// paper demonstrates against: a social network dataset derived from the
// LDBC Social Network Benchmark (SNB), fragmented into Solid pods — one pod
// per person, holding a WebID profile, a public type index, date-fragmented
// post documents, comment documents, likes, forums, and noise files — plus
// the catalog of default SPARQL queries (the "Discover" workload) the demo
// UI offers.
//
// The paper's deployment uses SolidBench's default scale: 1,531 pods with
// 3,556,159 triples across 158,233 RDF files (§4.2). The generator
// reproduces that *shape* at configurable scale: per-pod document counts
// and triples-per-document match the paper's ratios, so scaling the person
// count recovers the full environment.
package solidbench

// Config controls dataset generation. The zero value is not useful; start
// from DefaultConfig or PaperConfig.
type Config struct {
	// Seed drives the deterministic generator.
	Seed int64
	// Persons is the number of pods (the paper's deployment: 1531).
	Persons int
	// Host is the base origin under which pods live, e.g.
	// "https://solidbench.local". Pods are placed at Host/pods/<id>/.
	Host string

	// FriendsPerPerson is the mean out-degree of the knows graph.
	FriendsPerPerson int
	// PostsPerPerson is the mean number of posts a person creates.
	PostsPerPerson int
	// PostDateBuckets is the number of distinct creation days posts are
	// spread over; each day becomes one posts/<date> document.
	PostDateBuckets int
	// CommentsPerPerson is the mean number of comments a person writes.
	CommentsPerPerson int
	// CommentDateBuckets fragments comments like posts.
	CommentDateBuckets int
	// AlbumsPerPerson is the number of album forums per person (each
	// person additionally owns a wall forum).
	AlbumsPerPerson int
	// LikesPerPerson is the mean number of likes a person gives.
	LikesPerPerson int
	// NoiseFilesPerPod is the number of query-irrelevant documents per pod
	// (the noise/ directory visible in the paper's Fig. 4 waterfall).
	NoiseFilesPerPod int
	// PrivateFraction in [0,1) marks that fraction of post documents as
	// readable only by the owner and their friends, exercising
	// authenticated querying.
	PrivateFraction float64
}

// DefaultConfig is a laptop-scale environment with the paper's per-pod
// shape (≈100 documents and ≈2,300 triples per pod).
func DefaultConfig() Config {
	return Config{
		Seed:               42,
		Persons:            16,
		Host:               "https://solidbench.invalid",
		FriendsPerPerson:   6,
		PostsPerPerson:     110,
		PostDateBuckets:    38,
		CommentsPerPerson:  100,
		CommentDateBuckets: 30,
		AlbumsPerPerson:    7,
		LikesPerPerson:     40,
		NoiseFilesPerPod:   5,
	}
}

// SmallConfig is a fast configuration for unit tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Persons = 6
	c.PostsPerPerson = 12
	c.PostDateBuckets = 6
	c.CommentsPerPerson = 10
	c.CommentDateBuckets = 5
	c.AlbumsPerPerson = 2
	c.LikesPerPerson = 8
	c.NoiseFilesPerPod = 2
	return c
}

// PaperConfig is the full demonstration environment of §4.2 (1,531 pods):
// ≈170k RDF files and ≈3.4M triples, within 8% of the paper's reported
// numbers. Generating and fragmenting it takes ≈17 s and ≈3 GB of heap;
// benchmarks use DefaultConfig and validate the same per-pod shape.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Persons = 1531
	return c
}

// PaperStats are the environment statistics reported in the paper (§4.2),
// used by the dataset-shape experiment (EXPERIMENTS.md, E5).
var PaperStats = struct {
	Pods    int
	Triples int
	Files   int
}{Pods: 1531, Triples: 3556159, Files: 158233}

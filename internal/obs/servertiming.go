package obs

import (
	"strconv"
	"strings"
	"time"
)

// Server-Timing (https://www.w3.org/TR/server-timing/) lets podserver tell
// the client how much of a dereference's wall time was spent server-side
// (handler work, configured latency, injected faults) versus on the wire.
// internal/deref parses the response header and attributes the total to
// the request's span and metrics.Request.Server, so the critical-path
// analysis can split gating time into server cost and network cost.

// ServerTimingHeader is the response header name.
const ServerTimingHeader = "Server-Timing"

// FormatServerTiming renders one metric entry, e.g. `app;dur=12.345`.
// Durations are milliseconds with microsecond precision, per the spec's
// recommended unit.
func FormatServerTiming(name string, d time.Duration) string {
	if d < 0 {
		d = 0
	}
	return name + ";dur=" + strconv.FormatFloat(float64(d.Microseconds())/1e3, 'f', 3, 64)
}

// ParseServerTiming sums every dur= parameter across all Server-Timing
// header values (a response may carry several, each a comma-separated
// metric list) and returns the total server-reported duration. Malformed
// entries are skipped; a response without the header yields zero.
func ParseServerTiming(vals []string) time.Duration {
	var totalMS float64
	for _, v := range vals {
		for _, entry := range strings.Split(v, ",") {
			params := strings.Split(entry, ";")
			for _, p := range params[1:] {
				p = strings.TrimSpace(p)
				if rest, ok := strings.CutPrefix(p, "dur="); ok {
					if f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil && f > 0 {
						totalMS += f
					}
				}
			}
		}
	}
	if totalMS <= 0 {
		return 0
	}
	return time.Duration(totalMS * float64(time.Millisecond))
}

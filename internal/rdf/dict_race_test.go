package rdf

import (
	"fmt"
	"sync"
	"testing"
)

// TestDictConcurrentInternStableIDs hammers one dictionary from many
// goroutines interning overlapping term sets while others decode, and
// asserts the bijection holds: every goroutine observes the same ID for the
// same term, and every ID decodes to exactly the term it was assigned for.
// Run under -race (make verify) this doubles as the dictionary's data-race
// proof.
func TestDictConcurrentInternStableIDs(t *testing.T) {
	const (
		goroutines = 8
		terms      = 2000
	)
	d := NewDict()
	mk := func(i int) Term {
		switch i % 4 {
		case 0:
			return NewIRI(fmt.Sprintf("http://example.org/iri/%d", i))
		case 1:
			return NewTypedLiteral(fmt.Sprintf("%d", i), XSDInteger)
		case 2:
			return NewLangLiteral(fmt.Sprintf("text %d", i), "en")
		default:
			return NewBlank(fmt.Sprintf("b%d", i))
		}
	}

	results := make([][]TermID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]TermID, terms)
			for i := 0; i < terms; i++ {
				// Each goroutine walks the shared term space in a different
				// order so first-intern races cover every term.
				k := (i*7 + g*13) % terms
				ids[k] = d.Intern(mk(k))
				// Interleave decodes of already-obtained IDs.
				if got := d.Decode(ids[k]); got != mk(k) {
					t.Errorf("goroutine %d: Decode(%d) = %s, want %s", g, ids[k], got, mk(k))
					return
				}
			}
			results[g] = ids
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := 0; i < terms; i++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("term %d: goroutine %d saw id %d, goroutine 0 saw %d",
					i, g, results[g][i], results[0][i])
			}
		}
	}
	if d.Size() != terms {
		t.Errorf("Size = %d, want %d", d.Size(), terms)
	}
	// Every term is found by Lookup with the agreed ID.
	for i := 0; i < terms; i++ {
		id, ok := d.Lookup(mk(i))
		if !ok || id != results[0][i] {
			t.Fatalf("Lookup(term %d) = (%d, %v), want (%d, true)", i, id, ok, results[0][i])
		}
	}
}

// TestDictConcurrentCanonical pins that Canonical is safe and stable while
// the dictionary is growing concurrently.
func TestDictConcurrentCanonical(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				term := NewIRI(fmt.Sprintf("http://example.org/c/%d", i%100))
				if got := d.Canonical(term); got != term {
					t.Errorf("Canonical(%s) = %s", term, got)
					return
				}
				d.Intern(NewLiteral(fmt.Sprintf("noise %d %d", g, i)))
			}
		}(g)
	}
	wg.Wait()
}

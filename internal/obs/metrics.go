package obs

import "ltqp/internal/resource"

// Metrics is the engine's standard instrument set, registered under the
// ltqp_ namespace. One Metrics aggregates across every query an engine
// executes — the process-level counterpart of the per-query
// metrics.Recorder. All fields tolerate a nil Metrics receiver through the
// nil-safety of the instruments themselves, so instrumented code calls
// m.Something().Inc() unconditionally.
type Metrics struct {
	QueriesStarted   *Counter
	QueriesSucceeded *Counter
	QueriesFailed    *Counter
	QueriesInFlight  *Gauge

	DocumentsFetched *Counter // successful network fetches (parsed documents)
	FetchFailures    *Counter // attempts that ended in error (incl. retried)
	Retries          *Counter // attempts beyond the first for a document
	BytesFetched     *Counter
	TriplesParsed    *Counter

	CacheHits   *Counter
	CacheMisses *Counter

	LinksQueued    *Counter
	LinkQueueDepth *Gauge
	// LinksByExtractor counts accepted links per link-extractor name.
	LinksByExtractor *CounterVec
	// DocumentsByStatus counts completed dereferences per HTTP status code.
	DocumentsByStatus *CounterVec

	ResultsEmitted *Counter

	// Shared serving subsystem (internal/serve): the cross-engine document
	// cache with revalidation, singleflight dereference dedup, admission
	// control and the result cache.
	SharedCacheHits          *Counter
	SharedCacheMisses        *Counter
	SharedCacheRevalidations *Counter // conditional refetches issued for stale entries
	SharedCacheNotModified   *Counter // revalidations answered 304 (cached copy kept)
	SharedCacheEvictions     *Counter
	SharedCacheBytes         *Gauge // current byte occupancy of the shared cache
	SharedCacheDocuments     *Gauge // documents currently cached
	SingleflightDedups       *Counter
	QueriesAdmitted          *Counter
	QueriesRejected          *Counter
	AdmissionQueueDepth      *Gauge
	ResultCacheHits          *Counter
	ResultCacheMisses        *Counter

	DerefDuration     *Histogram // seconds per successful dereference (incl. cache hits)
	TimeToFirstResult *Histogram // seconds from query start to first solution
	QueryDuration     *Histogram // seconds per completed query

	// Resource ledger instruments: per-query peak memory distribution,
	// cumulative charged bytes per tenant, and budget cancellations.
	QueryMemPeak      *Histogram  // bytes, high-water mark per finished query
	TenantMemCharged  *CounterVec // cumulative ledger-charged bytes by tenant
	MemBudgetExceeded *Counter    // queries cancelled for crossing Config.MemBudget

	// EventsDropped counts events discarded per named bus subscriber
	// (journal, sse, slog) because its buffer was full.
	EventsDropped *CounterVec

	// Tail-sampling instruments: traces retained by the trace store (by
	// keep reason: error, budget, degraded, slow, sampled) vs. dropped.
	TracesKept    *CounterVec
	TracesDropped *Counter

	// Traversal-defense instruments: limit trips by kind (docs-per-origin,
	// bytes-per-origin, scope, fanout, queue-cap, doc-bytes, slow-body)
	// and links pruned by the scope allowlist.
	LimitTrips      *CounterVec
	LinksOutOfScope *Counter
}

// NewMetrics registers the standard instrument set on r. A nil registry
// yields a Metrics whose instruments are all nil (every operation no-ops).
func NewMetrics(r *Registry) *Metrics {
	return &Metrics{
		QueriesStarted:   r.Counter("ltqp_queries_total", "Queries started."),
		QueriesSucceeded: r.Counter("ltqp_queries_succeeded_total", "Queries completed without error."),
		QueriesFailed:    r.Counter("ltqp_queries_failed_total", "Queries that ended with a traversal or execution error."),
		QueriesInFlight:  r.Gauge("ltqp_queries_in_flight", "Queries currently executing."),

		DocumentsFetched: r.Counter("ltqp_documents_fetched_total", "Documents successfully dereferenced over the network."),
		FetchFailures:    r.Counter("ltqp_fetch_failures_total", "Dereference attempts that failed (transport, HTTP, or parse)."),
		Retries:          r.Counter("ltqp_fetch_retries_total", "Dereference attempts beyond the first for a document."),
		BytesFetched:     r.Counter("ltqp_bytes_fetched_total", "Response body bytes read."),
		TriplesParsed:    r.Counter("ltqp_triples_parsed_total", "Triples parsed from dereferenced documents."),

		CacheHits:   r.Counter("ltqp_cache_hits_total", "Dereferences served from the engine document cache."),
		CacheMisses: r.Counter("ltqp_cache_misses_total", "Dereferences that missed the engine document cache."),

		LinksQueued:       r.Counter("ltqp_links_queued_total", "Links accepted by link queues."),
		LinkQueueDepth:    r.Gauge("ltqp_link_queue_depth", "Links currently queued across in-flight traversals."),
		LinksByExtractor:  r.CounterVec("ltqp_links_accepted_total", "Links accepted by link queues, by discovering extractor.", "extractor"),
		DocumentsByStatus: r.CounterVec("ltqp_documents_by_status_total", "Completed dereference responses by HTTP status code.", "status"),

		ResultsEmitted: r.Counter("ltqp_results_total", "Solutions streamed to clients."),

		SharedCacheHits:          r.Counter("ltqp_shared_cache_hits_total", "Dereferences served fresh from the shared document cache."),
		SharedCacheMisses:        r.Counter("ltqp_shared_cache_misses_total", "Dereferences the shared document cache had no entry for."),
		SharedCacheRevalidations: r.Counter("ltqp_shared_cache_revalidations_total", "Conditional refetches issued for stale shared-cache entries."),
		SharedCacheNotModified:   r.Counter("ltqp_shared_cache_not_modified_total", "Revalidations answered 304 Not Modified (cached parse kept)."),
		SharedCacheEvictions:     r.Counter("ltqp_shared_cache_evictions_total", "Documents evicted from the shared cache under its byte budget."),
		SharedCacheBytes:         r.Gauge("ltqp_shared_cache_bytes", "Current byte occupancy of the shared document cache."),
		SharedCacheDocuments:     r.Gauge("ltqp_shared_cache_documents", "Documents currently held by the shared document cache."),
		SingleflightDedups:       r.Counter("ltqp_singleflight_dedup_total", "Concurrent dereferences that joined another caller's in-flight fetch of the same IRI."),
		QueriesAdmitted:          r.Counter("ltqp_queries_admitted_total", "Queries admitted by the admission controller."),
		QueriesRejected:          r.Counter("ltqp_queries_rejected_total", "Queries rejected with 429 by the admission controller."),
		AdmissionQueueDepth:      r.Gauge("ltqp_admission_queue_depth", "Queries currently waiting in the admission queue."),
		ResultCacheHits:          r.Counter("ltqp_result_cache_hits_total", "Queries answered from the result cache."),
		ResultCacheMisses:        r.Counter("ltqp_result_cache_misses_total", "Queries that missed the result cache."),

		DerefDuration:     r.Histogram("ltqp_deref_duration_seconds", "Wall time per successful dereference (cache hits included).", DefaultLatencyBuckets),
		TimeToFirstResult: r.Histogram("ltqp_time_to_first_result_seconds", "Delay from query start to first solution.", DefaultLatencyBuckets),
		QueryDuration:     r.Histogram("ltqp_query_duration_seconds", "Wall time per completed query.", DefaultLatencyBuckets),

		QueryMemPeak:      r.Histogram("ltqp_query_mem_bytes", "Peak ledger-accounted memory per finished query (bytes).", DefaultMemBuckets),
		TenantMemCharged:  r.CounterVec("ltqp_tenant_mem_charged_bytes_total", "Cumulative ledger-charged bytes across finished queries, by tenant.", "tenant"),
		MemBudgetExceeded: r.Counter("ltqp_mem_budget_exceeded_total", "Queries cancelled for crossing their per-query memory budget."),

		EventsDropped: r.CounterVec("ltqp_events_dropped_total", "Engine events discarded because a subscriber's buffer was full, by subscriber name.", "subscriber"),

		TracesKept:    r.CounterVec("ltqp_traces_kept_total", "Traces retained by the tail sampler, by keep reason.", "reason"),
		TracesDropped: r.Counter("ltqp_traces_dropped_total", "Traces discarded by the tail sampler."),

		LimitTrips:      r.CounterVec("ltqp_traversal_limit_trips_total", "Traversal defenses fired, by limit kind.", "kind"),
		LinksOutOfScope: r.Counter("ltqp_links_out_of_scope_total", "Links pruned by the traversal scope allowlist."),
	}
}

// Observer bundles the observability surfaces one engine shares across its
// queries: the metrics registry with the standard ltqp_ instrument set, and
// the query tracker backing /debug/queries. A nil *Observer disables
// everything at zero cost.
type Observer struct {
	Registry *Registry
	Metrics  *Metrics
	Tracker  *QueryTracker
	// Events is the engine event bus: the ordered stream of everything the
	// engine does, consumed by the SSE feed, the slog adapter and the
	// JSONL journal. With no subscriber attached it costs the hot path one
	// atomic load and zero allocations.
	Events *Bus
	// Stream serves Events as /debug/events (Server-Sent Events). Call
	// Stream.Shutdown during graceful drain so open feeds close.
	Stream *EventStream
	// Health backs /healthz: ok vs degraded by recent deref failure ratio.
	Health *HealthChecker
	// Resources rolls finished queries' resource ledgers up per tenant,
	// serving the tenants section of /debug/resources and the peak_mem
	// column of load reports.
	Resources *resource.TenantLedger
	// TraceQueries makes the engine record a span tree for every query
	// (required for /debug/queries span output and Result.Trace).
	TraceQueries bool
	// Traces tail-samples completed queries' traces into a bounded ring
	// served at /debug/traces. Nil disables retention (the engine still
	// records spans when TraceQueries is set).
	Traces *TraceStore
}

// NewObserver builds a ready-to-wire observer: fresh registry, the
// standard metric set, a tracker remembering the 32 most recent queries,
// an event bus with its SSE stream, a health checker at the default
// degraded threshold, and per-query tracing enabled.
func NewObserver() *Observer {
	r := NewRegistry()
	m := NewMetrics(r)
	bus := NewBus()
	bus.CountDrops(m.EventsDropped)
	tracker := NewQueryTracker(32)
	// Live ledger-accounted bytes across in-flight queries, computed at
	// scrape time from the tracker (zero hot-path cost).
	r.GaugeFunc("ltqp_mem_inuse_bytes",
		"Ledger-accounted bytes currently live across in-flight queries.",
		func() float64 {
			var sum int64
			for _, rec := range tracker.InFlight() {
				sum += rec.Ledger().Current()
			}
			return float64(sum)
		})
	return &Observer{
		Registry:     r,
		Metrics:      m,
		Tracker:      tracker,
		Events:       bus,
		Stream:       NewEventStream(bus),
		Health:       &HealthChecker{Metrics: m},
		Resources:    resource.NewTenantLedger(),
		TraceQueries: true,
		Traces:       NewTraceStore(TraceStoreOptions{Metrics: m}),
	}
}

// Bus returns the observer's event bus; nil-safe.
func (o *Observer) Bus() *Bus {
	if o == nil {
		return nil
	}
	return o.Events
}

// M returns the observer's metric set; nil-safe.
func (o *Observer) M() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// TraceStore returns the observer's tail-sampling trace store; nil-safe.
func (o *Observer) TraceStore() *TraceStore {
	if o == nil {
		return nil
	}
	return o.Traces
}

// Res returns the observer's per-tenant resource rollup; nil-safe.
func (o *Observer) Res() *resource.TenantLedger {
	if o == nil {
		return nil
	}
	return o.Resources
}

// nilMetrics lets instrumented code chain through a nil *Metrics.
var nilMetrics = &Metrics{}

// On returns m, or a Metrics of nil instruments when m is nil — so call
// sites can write obs.On(m).DocumentsFetched.Inc() unconditionally.
func On(m *Metrics) *Metrics {
	if m == nil {
		return nilMetrics
	}
	return m
}

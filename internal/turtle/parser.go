// Package turtle implements a parser and serializers for the RDF Turtle
// family of formats (Turtle, N-Triples, N-Quads), which Solid pods use as
// their primary representation. The parser supports the full Turtle grammar
// used in practice by Solid servers: prefix and base directives, prefixed
// names with escapes, literals (quoted, long-quoted, numeric and boolean
// shorthands, language tags, datatypes), anonymous and labelled blank nodes,
// blank node property lists, collections, and comment handling.
package turtle

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"ltqp/internal/rdf"
)

// Options configures a parse.
type Options struct {
	// Base is the base IRI against which relative IRIs resolve; for
	// dereferenced documents this is the document URL.
	Base string
	// BlankPrefix is prepended to every blank node label so that labels
	// from different documents do not collide when merged into one store.
	BlankPrefix string
	// Dict, when non-nil, interns every emitted term and replaces it with
	// the dictionary's canonical copy. Terms across documents parsed with
	// the same Dict then share backing strings, and downstream consumers
	// (document cache, store ingest) intern to pure map hits.
	Dict *rdf.Dict
}

// Parse parses a Turtle document and returns its triples in document order.
func Parse(input string, opts Options) ([]rdf.Triple, error) {
	p := &parser{
		in:       input,
		base:     opts.Base,
		bnPrefix: opts.BlankPrefix,
		dict:     opts.Dict,
		prefixes: map[string]string{},
		line:     1,
	}
	if err := p.parseDocument(); err != nil {
		return nil, err
	}
	return p.triples, nil
}

// ParseString parses with an empty configuration; relative IRIs are kept
// as-is. It is a convenience for tests and embedded documents.
func ParseString(input string) ([]rdf.Triple, error) {
	return Parse(input, Options{})
}

// parser is a recursive-descent Turtle parser over an input string.
type parser struct {
	in       string
	pos      int
	line     int
	base     string
	bnPrefix string
	dict     *rdf.Dict
	prefixes map[string]string
	triples  []rdf.Triple
	bnodeN   int
}

// emit appends one parsed triple, canonicalizing its terms through the
// configured dictionary (if any) so every emitted term is the dictionary's
// shared copy.
func (p *parser) emit(s, pred, o rdf.Term) {
	if p.dict != nil {
		s = p.dict.Canonical(s)
		pred = p.dict.Canonical(pred)
		o = p.dict.Canonical(o)
	}
	p.triples = append(p.triples, rdf.NewTriple(s, pred, o))
}

// errf formats a parse error with the current line number.
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("turtle: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// eof reports whether the input is exhausted.
func (p *parser) eof() bool { return p.pos >= len(p.in) }

// peek returns the current byte without consuming it (0 at EOF).
func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.in[p.pos]
}

// peekAt returns the byte at offset from the current position.
func (p *parser) peekAt(off int) byte {
	if p.pos+off >= len(p.in) {
		return 0
	}
	return p.in[p.pos+off]
}

// next consumes and returns the current byte.
func (p *parser) next() byte {
	c := p.in[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

// skipWS consumes whitespace and comments.
func (p *parser) skipWS() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.next()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				p.next()
			}
		default:
			return
		}
	}
}

// expect consumes the given byte or errors.
func (p *parser) expect(c byte) error {
	p.skipWS()
	if p.eof() || p.peek() != c {
		return p.errf("expected %q, got %q", string(c), p.rest(10))
	}
	p.next()
	return nil
}

// rest returns up to n characters of remaining input, for error messages.
func (p *parser) rest(n int) string {
	end := p.pos + n
	if end > len(p.in) {
		end = len(p.in)
	}
	return p.in[p.pos:end]
}

// hasKeyword reports whether the case-insensitive keyword occurs at the
// current position followed by a non-name character.
func (p *parser) hasKeyword(kw string) bool {
	if p.pos+len(kw) > len(p.in) {
		return false
	}
	if !strings.EqualFold(p.in[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	c := p.peekAt(len(kw))
	return c == 0 || c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '<' || c == '#'
}

// parseDocument parses the whole document: directives and triple statements.
func (p *parser) parseDocument() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		switch {
		case p.peek() == '@':
			if err := p.parseAtDirective(); err != nil {
				return err
			}
		case p.hasKeyword("PREFIX"):
			p.pos += len("PREFIX")
			if err := p.parsePrefixBody(false); err != nil {
				return err
			}
		case p.hasKeyword("BASE"):
			p.pos += len("BASE")
			if err := p.parseBaseBody(false); err != nil {
				return err
			}
		default:
			if err := p.parseTriples(); err != nil {
				return err
			}
		}
	}
}

// parseAtDirective parses @prefix and @base directives.
func (p *parser) parseAtDirective() error {
	p.next() // '@'
	switch {
	case strings.HasPrefix(p.in[p.pos:], "prefix"):
		p.pos += len("prefix")
		return p.parsePrefixBody(true)
	case strings.HasPrefix(p.in[p.pos:], "base"):
		p.pos += len("base")
		return p.parseBaseBody(true)
	default:
		return p.errf("unknown directive @%s", p.rest(8))
	}
}

// parsePrefixBody parses `pfx: <iri>` with an optional trailing dot.
func (p *parser) parsePrefixBody(dotted bool) error {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		if c := p.peek(); c == ' ' || c == '\t' || c == '\n' || c == '<' {
			return p.errf("malformed prefix name")
		}
		p.next()
	}
	if p.eof() {
		return p.errf("unterminated prefix declaration")
	}
	name := p.in[start:p.pos]
	p.next() // ':'
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	if dotted {
		return p.expect('.')
	}
	return nil
}

// parseBaseBody parses `<iri>` with an optional trailing dot.
func (p *parser) parseBaseBody(dotted bool) error {
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.base = iri
	if dotted {
		return p.expect('.')
	}
	return nil
}

// parseTriples parses one triples statement: subject predicateObjectList '.'
func (p *parser) parseTriples() error {
	p.skipWS()
	var subject rdf.Term
	var err error
	switch p.peek() {
	case '[':
		subject, err = p.parseBlankNodePropertyList()
		if err != nil {
			return err
		}
		p.skipWS()
		// A bare blank node property list may stand alone as a statement.
		if p.peek() == '.' {
			p.next()
			return nil
		}
	case '(':
		subject, err = p.parseCollection()
		if err != nil {
			return err
		}
	default:
		subject, err = p.parseSubject()
		if err != nil {
			return err
		}
	}
	if err := p.parsePredicateObjectList(subject); err != nil {
		return err
	}
	return p.expect('.')
}

// parseSubject parses an IRI or blank node label.
func (p *parser) parseSubject() (rdf.Term, error) {
	p.skipWS()
	switch {
	case p.peek() == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case p.peek() == '_' && p.peekAt(1) == ':':
		return p.parseBlankLabel()
	default:
		return p.parsePrefixedName()
	}
}

// parsePredicateObjectList parses `verb objectList (';' (verb objectList)?)*`.
func (p *parser) parsePredicateObjectList(subject rdf.Term) error {
	for {
		p.skipWS()
		pred, err := p.parseVerb()
		if err != nil {
			return err
		}
		if err := p.parseObjectList(subject, pred); err != nil {
			return err
		}
		p.skipWS()
		if p.peek() != ';' {
			return nil
		}
		for p.peek() == ';' {
			p.next()
			p.skipWS()
		}
		// Trailing semicolon before '.' or ']' is permitted.
		if c := p.peek(); c == '.' || c == ']' || c == 0 {
			return nil
		}
	}
}

// parseVerb parses a predicate: IRI, prefixed name, or the keyword 'a'.
func (p *parser) parseVerb() (rdf.Term, error) {
	p.skipWS()
	if p.peek() == 'a' {
		c := p.peekAt(1)
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<' || c == '[' || c == '_' || c == '(' || c == '"' || c == '\'' || c == '?' {
			p.next()
			return rdf.NewIRI(rdf.RDFType), nil
		}
	}
	if p.peek() == '<' {
		iri, err := p.parseIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	}
	return p.parsePrefixedName()
}

// parseObjectList parses `object (',' object)*`, emitting triples.
func (p *parser) parseObjectList(subject, pred rdf.Term) error {
	for {
		obj, err := p.parseObject()
		if err != nil {
			return err
		}
		p.emit(subject, pred, obj)
		p.skipWS()
		if p.peek() != ',' {
			return nil
		}
		p.next()
	}
}

// parseObject parses any object term.
func (p *parser) parseObject() (rdf.Term, error) {
	p.skipWS()
	if p.eof() {
		return rdf.Term{}, p.errf("unexpected end of input in object position")
	}
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '_' && p.peekAt(1) == ':':
		return p.parseBlankLabel()
	case c == '[':
		return p.parseBlankNodePropertyList()
	case c == '(':
		return p.parseCollection()
	case c == '"' || c == '\'':
		return p.parseLiteral()
	case c == '+' || c == '-' || (c >= '0' && c <= '9') || (c == '.' && p.peekAt(1) >= '0' && p.peekAt(1) <= '9'):
		return p.parseNumber()
	case p.hasBareKeyword("true"):
		p.pos += 4
		return rdf.Boolean(true), nil
	case p.hasBareKeyword("false"):
		p.pos += 5
		return rdf.Boolean(false), nil
	default:
		return p.parsePrefixedName()
	}
}

// hasBareKeyword reports a case-sensitive keyword followed by a delimiter.
func (p *parser) hasBareKeyword(kw string) bool {
	if !strings.HasPrefix(p.in[p.pos:], kw) {
		return false
	}
	c := p.peekAt(len(kw))
	switch c {
	case 0, ' ', '\t', '\r', '\n', '.', ';', ',', ')', ']', '#':
		return true
	}
	return false
}

// parseIRIRef parses `<...>` applying \u escapes and base resolution.
func (p *parser) parseIRIRef() (string, error) {
	if p.peek() != '<' {
		return "", p.errf("expected IRI, got %q", p.rest(10))
	}
	p.next()
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated IRI")
		}
		c := p.next()
		switch c {
		case '>':
			return rdf.ResolveIRI(p.base, b.String()), nil
		case '\\':
			if p.eof() {
				return "", p.errf("unterminated escape in IRI")
			}
			e := p.next()
			switch e {
			case 'u':
				r, err := p.readHex(4)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			case 'U':
				r, err := p.readHex(8)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			default:
				return "", p.errf("invalid escape \\%c in IRI", e)
			}
		case ' ', '\n', '\t':
			return "", p.errf("whitespace in IRI")
		default:
			b.WriteByte(c)
		}
	}
}

// readHex reads n hex digits and returns the code point.
func (p *parser) readHex(n int) (rune, error) {
	if p.pos+n > len(p.in) {
		return 0, p.errf("truncated \\u escape")
	}
	v, err := strconv.ParseUint(p.in[p.pos:p.pos+n], 16, 32)
	if err != nil {
		return 0, p.errf("invalid \\u escape: %v", err)
	}
	p.pos += n
	return rune(v), nil
}

// isPNChar reports whether c may appear inside a prefixed-name local part.
func isPNChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' || c == '%' || c == '\\' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c >= 0x80
}

// parsePrefixedName parses `prefix:local` and expands it.
func (p *parser) parsePrefixedName() (rdf.Term, error) {
	start := p.pos
	// Prefix part (may be empty).
	for !p.eof() {
		c := p.peek()
		if c == ':' {
			break
		}
		if !isPNChar(c) || c == '.' {
			break
		}
		p.next()
	}
	if p.eof() || p.peek() != ':' {
		return rdf.Term{}, p.errf("expected prefixed name, got %q", p.rest(10))
	}
	prefix := p.in[start:p.pos]
	p.next() // ':'
	ns, ok := p.prefixes[prefix]
	if !ok {
		return rdf.Term{}, p.errf("undeclared prefix %q", prefix)
	}
	// Local part with escape handling; trailing dots terminate the name.
	var local strings.Builder
	for !p.eof() {
		c := p.peek()
		if c == '\\' {
			p.next()
			if p.eof() {
				return rdf.Term{}, p.errf("unterminated local escape")
			}
			local.WriteByte(p.next())
			continue
		}
		if !isPNChar(c) || c == '\\' {
			break
		}
		if c == '.' {
			// A dot is part of the name only if followed by another name char.
			if !isPNChar(p.peekAt(1)) || p.peekAt(1) == '.' && !isPNChar(p.peekAt(2)) {
				break
			}
		}
		local.WriteByte(p.next())
	}
	return rdf.NewIRI(ns + local.String()), nil
}

// parseBlankLabel parses `_:label`, applying the configured prefix.
func (p *parser) parseBlankLabel() (rdf.Term, error) {
	p.next() // '_'
	p.next() // ':'
	start := p.pos
	for !p.eof() {
		c := p.peek()
		if c == '-' || c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.next()
			continue
		}
		if c == '.' && p.pos+1 < len(p.in) && isPNChar(p.in[p.pos+1]) && p.in[p.pos+1] != '.' {
			p.next()
			continue
		}
		break
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.NewBlank(p.bnPrefix + p.in[start:p.pos]), nil
}

// freshBlank mints a new anonymous blank node.
func (p *parser) freshBlank() rdf.Term {
	p.bnodeN++
	return rdf.NewBlank(fmt.Sprintf("%sgenid%d", p.bnPrefix, p.bnodeN))
}

// parseBlankNodePropertyList parses `[ predicateObjectList? ]`.
func (p *parser) parseBlankNodePropertyList() (rdf.Term, error) {
	p.next() // '['
	node := p.freshBlank()
	p.skipWS()
	if p.peek() == ']' {
		p.next()
		return node, nil
	}
	if err := p.parsePredicateObjectList(node); err != nil {
		return rdf.Term{}, err
	}
	if err := p.expect(']'); err != nil {
		return rdf.Term{}, err
	}
	return node, nil
}

// parseCollection parses `( object* )` into an rdf:List.
func (p *parser) parseCollection() (rdf.Term, error) {
	p.next() // '('
	var items []rdf.Term
	for {
		p.skipWS()
		if p.eof() {
			return rdf.Term{}, p.errf("unterminated collection")
		}
		if p.peek() == ')' {
			p.next()
			break
		}
		obj, err := p.parseObject()
		if err != nil {
			return rdf.Term{}, err
		}
		items = append(items, obj)
	}
	if len(items) == 0 {
		return rdf.NewIRI(rdf.RDFNil), nil
	}
	head := p.freshBlank()
	cur := head
	for i, item := range items {
		p.emit(cur, rdf.NewIRI(rdf.RDFFirst), item)
		if i == len(items)-1 {
			p.emit(cur, rdf.NewIRI(rdf.RDFRest), rdf.NewIRI(rdf.RDFNil))
		} else {
			next := p.freshBlank()
			p.emit(cur, rdf.NewIRI(rdf.RDFRest), next)
			cur = next
		}
	}
	return head, nil
}

// parseLiteral parses quoted strings with optional language tag or datatype.
func (p *parser) parseLiteral() (rdf.Term, error) {
	lex, err := p.parseQuoted()
	if err != nil {
		return rdf.Term{}, err
	}
	switch p.peek() {
	case '@':
		p.next()
		start := p.pos
		for !p.eof() {
			c := p.peek()
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' {
				p.next()
				continue
			}
			break
		}
		if p.pos == start {
			return rdf.Term{}, p.errf("empty language tag")
		}
		return rdf.NewLangLiteral(lex, p.in[start:p.pos]), nil
	case '^':
		if p.peekAt(1) != '^' {
			return rdf.Term{}, p.errf("expected ^^ after literal")
		}
		p.next()
		p.next()
		var dt rdf.Term
		if p.peek() == '<' {
			iri, err := p.parseIRIRef()
			if err != nil {
				return rdf.Term{}, err
			}
			dt = rdf.NewIRI(iri)
		} else {
			dt, err = p.parsePrefixedName()
			if err != nil {
				return rdf.Term{}, err
			}
		}
		return rdf.NewTypedLiteral(lex, dt.Value), nil
	}
	return rdf.NewLiteral(lex), nil
}

// parseQuoted parses single/double and long quoted strings with escapes.
func (p *parser) parseQuoted() (string, error) {
	quote := p.next() // '"' or '\''
	long := false
	if p.peek() == quote && p.peekAt(1) == quote {
		p.next()
		p.next()
		long = true
	} else if p.peek() == quote {
		// Empty short string.
		p.next()
		return "", nil
	}
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated string")
		}
		c := p.next()
		if c == quote {
			if !long {
				return b.String(), nil
			}
			if p.peek() == quote && p.peekAt(1) == quote {
				p.next()
				p.next()
				return b.String(), nil
			}
			b.WriteByte(c)
			continue
		}
		if c == '\\' {
			if p.eof() {
				return "", p.errf("unterminated escape")
			}
			e := p.next()
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"', '\'', '\\':
				b.WriteByte(e)
			case 'u':
				r, err := p.readHex(4)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			case 'U':
				r, err := p.readHex(8)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			default:
				return "", p.errf("invalid string escape \\%c", e)
			}
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return "", p.errf("newline in short string")
		}
		b.WriteByte(c)
	}
}

// parseNumber parses integer, decimal, and double shorthands.
func (p *parser) parseNumber() (rdf.Term, error) {
	start := p.pos
	if c := p.peek(); c == '+' || c == '-' {
		p.next()
	}
	digits := 0
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		p.next()
		digits++
	}
	isDecimal, isDouble := false, false
	if p.peek() == '.' && p.peekAt(1) >= '0' && p.peekAt(1) <= '9' {
		isDecimal = true
		p.next()
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.next()
			digits++
		}
	}
	if c := p.peek(); c == 'e' || c == 'E' {
		isDouble = true
		p.next()
		if c := p.peek(); c == '+' || c == '-' {
			p.next()
		}
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.next()
		}
	}
	if digits == 0 {
		return rdf.Term{}, p.errf("malformed number at %q", p.rest(10))
	}
	lex := p.in[start:p.pos]
	switch {
	case isDouble:
		return rdf.NewTypedLiteral(lex, rdf.XSDDouble), nil
	case isDecimal:
		return rdf.NewTypedLiteral(lex, rdf.XSDDecimal), nil
	default:
		return rdf.NewTypedLiteral(lex, rdf.XSDInteger), nil
	}
}

// validUTF8 is a debugging helper used by fuzz-style tests.
func validUTF8(s string) bool { return utf8.ValidString(s) }

// Package simenv assembles the full simulated demonstration environment:
// a SolidBench dataset served as Solid pods by an in-process HTTP server.
// Tests, benchmarks, examples, and the demo commands all build on it.
package simenv

import (
	"net/http"
	"net/http/httptest"

	"ltqp/internal/deref"
	"ltqp/internal/podserver"
	"ltqp/internal/solid"
	"ltqp/internal/solidbench"
)

// Env is a running simulated Solid environment.
type Env struct {
	// Dataset is the generated social network (IRIs minted under the live
	// server's origin).
	Dataset *solidbench.Dataset
	// Pods are the materialized pods.
	Pods []*solid.Pod
	// PodServer is the Solid HTTP handler (latency knobs live here).
	PodServer *podserver.Server
	// Server is the live HTTP test server.
	Server *httptest.Server
}

// New starts an environment for the configuration. cfg.Host is overridden
// with the live server origin so that every IRI in the environment
// dereferences. Call Close when done.
func New(cfg solidbench.Config) *Env {
	return NewWith(cfg, nil)
}

// NewWith starts an environment whose pod server handler is wrapped by mw —
// e.g. a faultinject middleware, so chaos tests can make the pods
// misbehave. A nil mw behaves like New.
func NewWith(cfg solidbench.Config, mw func(http.Handler) http.Handler) *Env {
	ps := podserver.New()
	var handler http.Handler = ps
	if mw != nil {
		handler = mw(ps)
	}
	ts := httptest.NewServer(handler)
	cfg.Host = ts.URL
	ds := solidbench.Generate(cfg)
	pods := ds.BuildPods()
	for _, p := range pods {
		ps.AddPod(p)
	}
	return &Env{Dataset: ds, Pods: pods, PodServer: ps, Server: ts}
}

// Close shuts the HTTP server down.
func (e *Env) Close() { e.Server.Close() }

// Client returns an HTTP client for the environment.
func (e *Env) Client() *http.Client { return e.Server.Client() }

// CredentialsFor returns simulated Solid-OIDC credentials for a person,
// as issued by the environment's identity provider.
func (e *Env) CredentialsFor(person int) *deref.Credentials {
	webID := e.Dataset.WebID(person)
	return &deref.Credentials{WebID: webID, Token: podserver.TokenFor(webID)}
}

// Stats computes the dataset shape statistics.
func (e *Env) Stats() solidbench.Stats { return solidbench.ComputeStats(e.Pods) }

package core

import (
	"encoding/json"
	"time"

	"ltqp/internal/exec"
	"ltqp/internal/metrics"
	"ltqp/internal/obs"
	"ltqp/internal/resource"
)

// ExplainSchemaVersion identifies the explain-report JSON layout.
const ExplainSchemaVersion = 1

// Explain is the post-execution explain report: where traversal went (the
// link-discovery topology), which documents fed the results (provenance
// contributions), and when results arrived relative to traversal progress
// (the timeline inside the topology). It is the engine-side counterpart of
// the paper's Fig. 4 network waterfall — machine-readable instead of a
// browser devtools screenshot.
type Explain struct {
	Schema     int      `json:"schema"`
	Query      string   `json:"query"`
	Seeds      []string `json:"seeds"`
	DurationMS float64  `json:"duration_ms"`
	// Contributions tallies, per document, how many pattern matches its
	// triples fed into the pipeline.
	Contributions []exec.DocContribution `json:"contributions"`
	// Topology is the traversal graph with the interleaved
	// document/result timeline.
	Topology obs.TopologyJSON `json:"topology"`
	// Resources is the final resource-ledger snapshot: live/peak bytes per
	// layer and budget state. Nil when the query ran without accounting.
	Resources *resource.Snapshot `json:"resources,omitempty"`
	// CriticalPath attributes TTFR and total traversal latency to the
	// dependent dereference chains that gated them.
	CriticalPath *obs.CritPath `json:"critical_path,omitempty"`
	// QueuePolicy names the link-queue discipline the traversal ran with
	// ("fifo", "reason", "guided", or "custom" for an Options.NewQueue).
	QueuePolicy string `json:"queue_policy,omitempty"`
	// LimitTrips lists the traversal defenses that fired during this query
	// (deduplicated per limit kind and origin/document).
	LimitTrips []metrics.LimitTrip `json:"limit_trips,omitempty"`
}

// Explain builds the explain report. Call it after Results has closed; it
// returns nil when the execution ran without Options.Explain.
func (x *Execution) Explain() *Explain {
	if x.topo == nil && x.prov == nil {
		return nil
	}
	return &Explain{
		Schema:        ExplainSchemaVersion,
		Query:         x.queryStr,
		Seeds:         x.Seeds,
		DurationMS:    float64(time.Since(x.start).Microseconds()) / 1000,
		Contributions: x.prov.Contributions(),
		Topology:      x.topo.Snapshot(),
		Resources:     x.ledger.Snapshot(),
		CriticalPath:  x.CriticalPath(),
		QueuePolicy:   string(x.queuePolicy),
		LimitTrips:    x.Recorder.LimitTrips(),
	}
}

// JSON renders the report as indented JSON.
func (r *Explain) JSON() ([]byte, error) {
	if r == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(r, "", "  ")
}

// DOT renders the report's traversal topology as a Graphviz digraph.
func (x *Execution) DOT() string {
	return x.topo.DOT()
}

// docMatches converts the exec-layer provenance tally to the obs wire type.
func docMatches(cs []exec.DocContribution) []obs.DocMatches {
	out := make([]obs.DocMatches, len(cs))
	for i, c := range cs {
		out[i] = obs.DocMatches{Document: c.Document, Matches: c.Matches}
	}
	return out
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"ltqp"
	"ltqp/internal/simenv"
	"ltqp/internal/solidbench"
)

func newEndpoint(t *testing.T) (*httptest.Server, *simenv.Env) {
	t.Helper()
	env := simenv.New(solidbench.SmallConfig())
	t.Cleanup(env.Close)
	h := NewHandler(ltqp.New(ltqp.Config{Client: env.Client(), Lenient: true}), 2*time.Minute)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, env
}

func TestProtocolGetSelectJSON(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Discover(1, 1)
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type = %s", ct)
	}
	var parsed struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]interface{} `json:"bindings"`
		} `json:"results"`
	}
	body, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("not results JSON: %v\n%s", err, body)
	}
	if len(parsed.Results.Bindings) == 0 {
		t.Error("no bindings")
	}
	if len(parsed.Head.Vars) != 3 {
		t.Errorf("vars = %v", parsed.Head.Vars)
	}
}

func TestProtocolPostForms(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Discover(5, 1)

	// application/x-www-form-urlencoded
	resp, err := http.PostForm(srv.URL, url.Values{"query": {q.Text}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("form POST status = %d", resp.StatusCode)
	}

	// application/sparql-query
	req, _ := http.NewRequest(http.MethodPost, srv.URL, strings.NewReader(q.Text))
	req.Header.Set("Content-Type", "application/sparql-query")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("direct POST status = %d", resp.StatusCode)
	}
}

func TestProtocolContentNegotiation(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Discover(5, 1)
	for accept, wantCT := range map[string]string{
		"text/csv":                  "text/csv",
		"text/tab-separated-values": "text/tab-separated-values",
	} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+url.QueryEscape(q.Text), nil)
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != wantCT {
			t.Errorf("accept %s → %s", accept, ct)
		}
		if len(body) == 0 {
			t.Errorf("accept %s: empty body", accept)
		}
	}
}

func TestProtocolAsk(t *testing.T) {
	srv, env := newEndpoint(t)
	q := env.Dataset.Catalog()[36] // Short 5: ASK
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(q.Text))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"boolean"`) {
		t.Errorf("ask body = %s", body)
	}
}

func TestProtocolConstructTurtle(t *testing.T) {
	srv, env := newEndpoint(t)
	v := solidbench.NewVocab(env.Dataset.Config.Host)
	query := `PREFIX snvoc: <` + v.NS() + `>
CONSTRUCT { ?m snvoc:content ?c } WHERE {
  ?m snvoc:hasCreator <` + env.Dataset.WebID(0) + `>;
     snvoc:content ?c.
}`
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/turtle" {
		t.Errorf("content type = %s", ct)
	}
	if !strings.Contains(string(body), "vocabulary/content") {
		t.Errorf("turtle body = %s", truncateStr(string(body), 300))
	}

	// N-Triples via Accept.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+url.QueryEscape(query), nil)
	req.Header.Set("Accept", "application/n-triples")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-triples" {
		t.Errorf("nt content type = %s", ct)
	}
}

func TestProtocolErrors(t *testing.T) {
	srv, _ := newEndpoint(t)
	// Missing query.
	resp, _ := http.Get(srv.URL)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
	// Parse error.
	resp, _ = http.Get(srv.URL + "?query=" + url.QueryEscape("NOT SPARQL"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
	// Bad method.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL, nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("DELETE status = %d", resp.StatusCode)
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

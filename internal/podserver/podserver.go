// Package podserver serves simulated Solid pods over real HTTP. It
// reproduces the environment of the paper's demonstration scenario: a host
// exposing many pods under /pods/<id>/, each a hierarchy of Turtle
// documents with LDP container listings, WebID profiles, and type indexes.
// Document-level access control is enforced from bearer WebID credentials,
// and an artificial network latency can be injected so that resource
// waterfalls (Figs. 4 and 5) exhibit realistic request timing.
//
// Responses carry strong ETags and Last-Modified stamps, and conditional
// requests (If-None-Match / If-Modified-Since) are answered 304 Not
// Modified, so revalidating clients — the engine's shared document cache in
// particular — can refresh an entry without re-downloading the body.
package podserver

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ltqp/internal/obs"
	"ltqp/internal/solid"
)

// TokenFor returns the simulated identity provider's bearer token for a
// WebID. The dereferencer presents it; the server verifies it. This stands
// in for the Solid-OIDC flow of the paper's demo ("Log in").
func TokenFor(webID string) string { return "sig:" + webID }

// servedDoc is a fully rendered document ready to serve.
type servedDoc struct {
	turtle string
	access solid.Access
	etag   string    // strong validator over the body
	mod    time.Time // Last-Modified (second resolution, per HTTP-date)
}

// etagFor computes the strong entity tag of a body: a quoted content hash,
// so identical bodies validate across restarts and rebases only change the
// tag when they change the body.
func etagFor(body string) string {
	sum := sha256.Sum256([]byte(body))
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// Server hosts a set of materialized pods.
type Server struct {
	mu   sync.RWMutex
	docs map[string]servedDoc // absolute URL (no fragment) → doc

	// Latency is added to every response, simulating network RTT.
	Latency time.Duration
	// BytesPerSecond, when > 0, adds size-proportional delay.
	BytesPerSecond int64
	// Spans, when non-nil, records a server-side span for every request:
	// the pod half of the distributed trace, joined to the client's spans
	// through the traceparent request header.
	Spans *obs.ServerSpanLog

	// Fallback, when non-nil, handles requests for URLs no document is
	// registered under (instead of 404). Adversarial tests mount hostile
	// generators here so attack documents share the benign pods' origin.
	Fallback http.Handler

	// modTime stamps documents registered from now on; defaults to server
	// creation time. HTTP dates carry second resolution, so it is truncated.
	modTime time.Time

	requests    atomic.Int64
	notModified atomic.Int64
}

// New returns an empty server.
func New() *Server {
	return &Server{docs: map[string]servedDoc{}, modTime: time.Now().UTC().Truncate(time.Second)}
}

// SetModTime sets the Last-Modified stamp applied to subsequently
// registered (or rebased) documents — tests use it to step document age.
func (s *Server) SetModTime(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.modTime = t.UTC().Truncate(time.Second)
}

// AddPod materializes the pod (containers included) and registers all its
// documents.
func (s *Server) AddPod(p *solid.Pod) {
	docs := p.Materialize()
	s.mu.Lock()
	defer s.mu.Unlock()
	for path, d := range docs {
		body := p.Turtle(d)
		s.docs[p.IRI(path)] = servedDoc{turtle: body, access: d.Access, etag: etagFor(body), mod: s.modTime}
	}
}

// AddDocument registers one standalone document by absolute URL.
func (s *Server) AddDocument(url, turtleBody string, access solid.Access) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[url] = servedDoc{turtle: turtleBody, access: access, etag: etagFor(turtleBody), mod: s.modTime}
}

// DocumentCount returns the number of registered documents.
func (s *Server) DocumentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// RequestCount returns the number of HTTP requests served.
func (s *Server) RequestCount() int64 { return s.requests.Load() }

// NotModifiedCount returns how many requests were answered 304.
func (s *Server) NotModifiedCount() int64 { return s.notModified.Load() }

// ResetRequestCount zeroes the request counters (benchmarks).
func (s *Server) ResetRequestCount() {
	s.requests.Store(0)
	s.notModified.Store(0)
}

// Rebase rewrites all registered document URLs and bodies from one base URL
// prefix to another. The simulated environment builds pods under a
// placeholder origin; once the HTTP test server assigns a real port, Rebase
// moves the content there so that all intra-pod links dereference. Bodies
// change, so entity tags are recomputed.
func (s *Server) Rebase(oldPrefix, newPrefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]servedDoc, len(s.docs))
	for u, d := range s.docs {
		nu := strings.Replace(u, oldPrefix, newPrefix, 1)
		d.turtle = strings.ReplaceAll(d.turtle, oldPrefix, newPrefix)
		d.etag = etagFor(d.turtle)
		out[nu] = d
	}
	s.docs = out
}

// srvTiming tracks one request's server-side timing: when handling began
// and how much of the elapsed time was artificial delay (configured
// latency, bandwidth shaping) rather than handler work.
type srvTiming struct {
	start time.Time
	delay time.Duration
}

// setServerTiming writes the Server-Timing response header — app (handler
// work) and delay (simulated latency) in milliseconds — so the client can
// split the fetch into server cost and network cost. Must run before the
// status/body is written; Add keeps any fault;dur= entry a fault-injection
// middleware already attached.
func (t srvTiming) setServerTiming(w http.ResponseWriter) {
	app := time.Since(t.start) - t.delay
	if app < 0 {
		app = 0
	}
	w.Header().Add(obs.ServerTimingHeader,
		obs.FormatServerTiming("app", app)+", "+obs.FormatServerTiming("delay", t.delay))
}

// ServeHTTP implements http.Handler with Solid-ish behaviour: Turtle
// responses with strong validators, 304 on successful revalidation, 401/403
// for protected documents, 404 otherwise. Every response carries a
// Server-Timing header; when Spans is set, a server-side span is recorded,
// joined to the client's trace via the traceparent request header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	t := srvTiming{start: time.Now()}
	status, bytes := http.StatusOK, int64(0)
	if s.Spans != nil {
		tp, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		defer func() {
			sp := obs.ServerSpan{
				SpanID:  obs.NewSpanID().String(),
				URL:     requestURL(r),
				Start:   t.start,
				DurMS:   float64(time.Since(t.start).Microseconds()) / 1000,
				DelayMS: float64(t.delay.Microseconds()) / 1000,
				Status:  status,
				Bytes:   bytes,
			}
			if !tp.TraceID.IsZero() {
				sp.TraceID = tp.TraceID.String()
				sp.ParentID = tp.SpanID.String()
			}
			s.Spans.Record(sp)
		}()
	}
	fail := func(msg string, code int) {
		status = code
		t.setServerTiming(w)
		http.Error(w, msg, code)
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
		t.delay += s.Latency
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		fail("method not allowed", http.StatusMethodNotAllowed)
		return
	}
	docURL := requestURL(r)
	s.mu.RLock()
	d, ok := s.docs[docURL]
	s.mu.RUnlock()
	if !ok {
		if s.Fallback != nil {
			s.Fallback.ServeHTTP(w, r)
			return
		}
		fail("not found", http.StatusNotFound)
		return
	}
	if !d.access.Public {
		webID, authorized := s.authorize(r, d.access)
		if webID == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="solid"`)
			fail("unauthorized", http.StatusUnauthorized)
			return
		}
		if !authorized {
			fail("forbidden", http.StatusForbidden)
			return
		}
	}
	w.Header().Set("ETag", d.etag)
	w.Header().Set("Last-Modified", d.mod.Format(http.TimeFormat))
	if notModified(r, d) {
		s.notModified.Add(1)
		status = http.StatusNotModified
		t.setServerTiming(w)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if s.BytesPerSecond > 0 {
		bd := time.Duration(int64(len(d.turtle)) * int64(time.Second) / s.BytesPerSecond)
		time.Sleep(bd)
		t.delay += bd
	}
	w.Header().Set("Content-Type", "text/turtle")
	w.Header().Set("Link", `<http://www.w3.org/ns/ldp#Resource>; rel="type"`)
	t.setServerTiming(w)
	if r.Method == http.MethodHead {
		return
	}
	n, _ := fmt.Fprint(w, d.turtle)
	bytes = int64(n)
}

// notModified evaluates the request's conditional headers against the
// document's validators. If-None-Match takes precedence over
// If-Modified-Since, per RFC 9110 §13.1.
func notModified(r *http.Request, d servedDoc) bool {
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if inm == "*" {
			return true
		}
		for _, candidate := range strings.Split(inm, ",") {
			candidate = strings.TrimSpace(candidate)
			// Weak comparison: a W/ prefix on either side is ignored.
			if strings.TrimPrefix(candidate, "W/") == strings.TrimPrefix(d.etag, "W/") {
				return true
			}
		}
		return false
	}
	if ims := r.Header.Get("If-Modified-Since"); ims != "" {
		if t, err := http.ParseTime(ims); err == nil {
			return !d.mod.After(t)
		}
	}
	return false
}

// authorize extracts and verifies the caller's WebID, then checks the ACL.
func (s *Server) authorize(r *http.Request, access solid.Access) (webID string, ok bool) {
	auth := r.Header.Get("Authorization")
	if !strings.HasPrefix(auth, "Bearer ") {
		return "", false
	}
	token := strings.TrimPrefix(auth, "Bearer ")
	claimed := r.Header.Get("X-WebID")
	if claimed == "" || TokenFor(claimed) != token {
		return "", false
	}
	for _, agent := range access.Agents {
		if agent == claimed {
			return claimed, true
		}
	}
	return claimed, false
}

// requestURL reconstructs the absolute document URL of a request.
func requestURL(r *http.Request) string {
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	u := url.URL{Scheme: scheme, Host: r.Host, Path: r.URL.Path}
	return u.String()
}

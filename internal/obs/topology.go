package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Topology records the link-discovery graph of one traversal: a node per
// dereferenced document (status, triples, bytes, timing, depth) and an edge
// per discovered link, labeled with the extractor that found it and with
// what happened to it (followed, deduplicated, pruned). It also captures
// the result-arrival timeline interleaved with document completions, which
// makes the "first results while traversal is still running" behaviour
// measurable rather than just claimed.
//
// All methods are safe on a nil receiver — a nil *Topology is the disabled
// state and costs nothing, the same opt-out pattern as the no-op spans.
// Non-nil recorders are safe for concurrent use by traversal workers.
type Topology struct {
	mu      sync.Mutex
	epoch   time.Time
	nodes   map[string]*TopoNode
	order   []string
	edges   []TopoEdge
	results []ResultEvent
}

// Edge statuses.
const (
	// EdgeFollowed marks a link accepted into the queue for dereferencing.
	EdgeFollowed = "followed"
	// EdgeDuplicate marks a link rejected because its URL was already
	// queued or dereferenced.
	EdgeDuplicate = "duplicate"
	// EdgeDepthPruned marks a link rejected by the MaxDepth bound.
	EdgeDepthPruned = "depth-pruned"
	// EdgeSelf marks a link pointing back at its own document.
	EdgeSelf = "self"
	// EdgeScopePruned marks a link rejected by the traversal allowlist.
	EdgeScopePruned = "scope-pruned"
	// EdgeLimitPruned marks a link rejected by a traversal defense (a
	// per-origin budget, a per-document fanout cap, or the queue cap).
	EdgeLimitPruned = "limit-pruned"
)

// TopoNode is one dereferenced (or attempted) document.
type TopoNode struct {
	URL     string  `json:"url"`
	Depth   int     `json:"depth"`
	Status  int     `json:"status,omitempty"`
	Triples int     `json:"triples,omitempty"`
	Bytes   int64   `json:"bytes,omitempty"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"duration_ms"`
	Seed    bool    `json:"seed,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// TopoEdge is one discovered link.
type TopoEdge struct {
	// From is the document the link was found in; To its target.
	From string `json:"from"`
	To   string `json:"to"`
	// Extractor names the link extractor that produced the link
	// ("ldp-container", "type-index", "solid-profile", "match", ...;
	// "seed" for the synthetic seed edges).
	Extractor string `json:"extractor"`
	// Reason is the link's discovery label, used for queue priorities; it
	// differs from Extractor when one extractor emits several link kinds
	// (solid-profile emits "storage" links, type-index emits
	// "type-index-container").
	Reason string `json:"reason,omitempty"`
	// Status tells what the traversal did with the link (EdgeFollowed,
	// EdgeDuplicate, EdgeDepthPruned, EdgeSelf).
	Status string `json:"status"`
}

// ResultEvent is one delivered solution on the execution timeline.
type ResultEvent struct {
	Row  int     `json:"row"`
	AtMS float64 `json:"at_ms"`
	// Sources are the result's source documents (present when the
	// execution ran with provenance enabled).
	Sources []string `json:"sources,omitempty"`
}

// TimelineEvent interleaves document completions and result arrivals.
type TimelineEvent struct {
	AtMS float64 `json:"at_ms"`
	// Kind is "document" or "result".
	Kind string `json:"kind"`
	// Ref is the document URL or the result row number rendered as text.
	Ref string `json:"ref"`
}

// TopologyJSON is the exported form of a topology.
type TopologyJSON struct {
	Nodes    []TopoNode      `json:"nodes"`
	Edges    []TopoEdge      `json:"edges"`
	Results  []ResultEvent   `json:"results"`
	Timeline []TimelineEvent `json:"timeline"`
}

// NewTopology returns a recorder whose timeline offsets are relative to
// epoch (the query start).
func NewTopology(epoch time.Time) *Topology {
	return &Topology{epoch: epoch, nodes: map[string]*TopoNode{}}
}

func (t *Topology) sinceMS(at time.Time) float64 {
	return float64(at.Sub(t.epoch).Microseconds()) / 1000
}

// Seed records a traversal seed: a root node plus a synthetic "seed" edge
// with no source document.
func (t *Topology) Seed(url string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.node(url, 0).Seed = true
	t.edges = append(t.edges, TopoEdge{To: url, Extractor: "seed", Reason: "seed", Status: EdgeFollowed})
}

// node returns the node for url, creating it at the given depth.
// Caller holds t.mu.
func (t *Topology) node(url string, depth int) *TopoNode {
	n, ok := t.nodes[url]
	if !ok {
		n = &TopoNode{URL: url, Depth: depth}
		t.nodes[url] = n
		t.order = append(t.order, url)
	}
	return n
}

// Document records a successful dereference.
func (t *Topology) Document(url string, depth, status, triples int, bytes int64, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.node(url, depth)
	n.Status = status
	n.Triples = triples
	n.Bytes = bytes
	n.StartMS = t.sinceMS(start)
	n.DurMS = float64(dur.Microseconds()) / 1000
}

// DocumentError records a failed dereference attempt (the node stays in the
// graph so failures are visible in the topology).
func (t *Topology) DocumentError(url string, depth int, errMsg string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.node(url, depth)
	n.Error = errMsg
	n.StartMS = t.sinceMS(start)
	n.DurMS = float64(dur.Microseconds()) / 1000
}

// Link records one discovered link and its fate.
func (t *Topology) Link(from, to, extractor, reason, status string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.edges = append(t.edges, TopoEdge{From: from, To: to, Extractor: extractor, Reason: reason, Status: status})
}

// Result records the arrival of result row n (0-based) with its source
// documents (nil when provenance is off).
func (t *Topology) Result(row int, sources []string) {
	if t == nil {
		return
	}
	at := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.results = append(t.results, ResultEvent{Row: row, AtMS: t.sinceMS(at), Sources: sources})
}

// FirstResultSources returns the source documents of the earliest recorded
// result (nil without results or provenance) — the critical-path analysis
// uses them to pin the dereference that gated TTFR.
func (t *Topology) FirstResultSources() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.results) == 0 {
		return nil
	}
	return append([]string(nil), t.results[0].Sources...)
}

// Documents returns the number of recorded nodes.
func (t *Topology) Documents() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.nodes)
}

// Links returns the number of recorded edges (seed edges included).
func (t *Topology) Links() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.edges)
}

// Results returns the number of recorded result arrivals.
func (t *Topology) Results() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.results)
}

// Snapshot exports the topology. Nodes appear in first-touch order, edges
// in discovery order, and the timeline interleaves document completions
// with result arrivals sorted by offset.
func (t *Topology) Snapshot() TopologyJSON {
	if t == nil {
		return TopologyJSON{Nodes: []TopoNode{}, Edges: []TopoEdge{}, Results: []ResultEvent{}, Timeline: []TimelineEvent{}}
	}
	t.mu.Lock()
	out := TopologyJSON{
		Nodes:   make([]TopoNode, 0, len(t.order)),
		Edges:   append([]TopoEdge{}, t.edges...),
		Results: append([]ResultEvent{}, t.results...),
	}
	for _, url := range t.order {
		out.Nodes = append(out.Nodes, *t.nodes[url])
	}
	t.mu.Unlock()

	out.Timeline = make([]TimelineEvent, 0, len(out.Nodes)+len(out.Results))
	for _, n := range out.Nodes {
		out.Timeline = append(out.Timeline, TimelineEvent{AtMS: n.StartMS + n.DurMS, Kind: "document", Ref: n.URL})
	}
	for _, r := range out.Results {
		out.Timeline = append(out.Timeline, TimelineEvent{AtMS: r.AtMS, Kind: "result", Ref: fmt.Sprintf("%d", r.Row)})
	}
	sort.SliceStable(out.Timeline, func(i, j int) bool { return out.Timeline[i].AtMS < out.Timeline[j].AtMS })
	return out
}

// DOT renders the topology as a Graphviz digraph: one box per document
// (seeds doubly outlined, failures dashed red) and one edge per link,
// labeled with the extractor; deduplicated or pruned links are dotted gray.
func (t *Topology) DOT() string {
	snap := t.Snapshot()
	var b strings.Builder
	b.WriteString("digraph traversal {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for _, n := range snap.Nodes {
		label := fmt.Sprintf("%s\\n%d triples, %.1fms", dotShorten(n.URL), n.Triples, n.DurMS)
		attrs := fmt.Sprintf("label=\"%s\"", dotEscape(label))
		if n.Seed {
			attrs += ", peripheries=2"
		}
		if n.Error != "" {
			attrs += ", style=dashed, color=red"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.URL, attrs)
	}
	for _, e := range snap.Edges {
		if e.From == "" {
			continue // seed edges have no source node to draw
		}
		attrs := fmt.Sprintf("label=%q, fontsize=8", e.Extractor)
		if e.Status != EdgeFollowed {
			attrs += ", style=dotted, color=gray"
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

// dotShorten trims long URLs for node labels, keeping the tail (the
// document path is the informative part).
func dotShorten(u string) string {
	if len(u) <= 48 {
		return u
	}
	return "..." + u[len(u)-45:]
}

// dotEscape escapes a DOT double-quoted string label (backslash-escapes
// quotes; \n sequences are produced by the caller).
func dotEscape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

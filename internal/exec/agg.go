package exec

import (
	"context"
	"strconv"
	"strings"

	"ltqp/internal/algebra"
	"ltqp/internal/rdf"
	"ltqp/internal/sparql"
)

// evalGroup implements GROUP BY with aggregate projection and HAVING. It is
// a blocking operator: grouping over a still-growing source would produce
// retractable results, so evaluation waits for the complete input.
func evalGroup(ctx context.Context, g algebra.Group, env *Env) Stream {
	out := make(chan rdf.Binding, chanCap)
	in := Eval(ctx, g.Input, env)
	go func() {
		defer close(out)
		rows := drain(ctx, in)
		if ctx.Err() != nil {
			return
		}

		// Compute group keys.
		keyVars := make([]string, 0, len(g.By))
		type grp struct {
			key  rdf.Binding
			rows []rdf.Binding
		}
		groups := map[string]*grp{}
		var order []string
		for _, c := range g.By {
			if c.Var != "" {
				keyVars = append(keyVars, c.Var)
			}
		}
		for _, row := range rows {
			key := rdf.NewBinding()
			for _, c := range g.By {
				switch {
				case c.Expr == nil:
					if t, ok := row.Get(c.Var); ok {
						key[c.Var] = t
					}
				default:
					if v, err := evalExpr(env, c.Expr, row); err == nil {
						if c.Var != "" {
							key[c.Var] = v
						} else {
							// Unnamed expression keys participate in
							// grouping via a synthetic name.
							key["__groupkey"+strconv.Itoa(len(key))] = v
						}
					}
				}
			}
			ks := key.Key(key.Vars())
			gr, ok := groups[ks]
			if !ok {
				gr = &grp{key: key}
				groups[ks] = gr
				order = append(order, ks)
			}
			gr.rows = append(gr.rows, row)
		}
		// Implicit single group for aggregate queries without GROUP BY.
		if len(groups) == 0 && len(g.By) == 0 {
			groups[""] = &grp{key: rdf.NewBinding()}
			order = append(order, "")
		}

		for _, ks := range order {
			gr := groups[ks]
			result := gr.key.Copy()
			if env.Prov != nil {
				// An aggregate row descends from every row of its group:
				// its provenance is the union of theirs.
				for _, row := range gr.rows {
					for k, v := range row {
						if rdf.IsProvVar(k) {
							result[k] = v
						}
					}
				}
			}
			for _, item := range g.Items {
				if item.Expr == nil {
					// Plain variable: must be a group key; already present.
					continue
				}
				if v, err := evalAggExpr(env, item.Expr, gr.key, gr.rows); err == nil {
					result[item.Var] = v
				}
			}
			havingOK := true
			for _, h := range g.Having {
				v, err := evalAggExpr(env, h, result, gr.rows)
				if err != nil {
					havingOK = false
					break
				}
				ok, err := v.EffectiveBooleanValue()
				if err != nil || !ok {
					havingOK = false
					break
				}
			}
			if !havingOK {
				continue
			}
			if !send(ctx, out, result) {
				return
			}
		}
	}()
	return out
}

// evalAggExpr evaluates an expression that may contain aggregate calls:
// aggregates are computed over the group rows, everything else over the
// group-key binding.
func evalAggExpr(env *Env, e sparql.Expression, key rdf.Binding, rows []rdf.Binding) (rdf.Term, error) {
	switch x := e.(type) {
	case sparql.ExprCall:
		if x.IsAggregate() {
			return evalAggregate(env, x, rows)
		}
		// Non-aggregate call: rebuild with recursively evaluated args.
		args := make([]rdf.Term, len(x.Args))
		for i, a := range x.Args {
			v, err := evalAggExpr(env, a, key, rows)
			if err != nil {
				return rdf.Term{}, err
			}
			args[i] = v
		}
		return evalEagerCall(env, x.Func, args)
	case sparql.ExprBinary:
		if !sparql.HasAggregates(x) {
			return evalExpr(env, x, key)
		}
		l, err := evalAggExpr(env, x.L, key, rows)
		if err != nil {
			return rdf.Term{}, err
		}
		r, err := evalAggExpr(env, x.R, key, rows)
		if err != nil {
			return rdf.Term{}, err
		}
		return evalBinary(env, sparql.ExprBinary{Op: x.Op, L: sparql.ExprTerm{Term: l}, R: sparql.ExprTerm{Term: r}}, key)
	case sparql.ExprUnary:
		if !sparql.HasAggregates(x) {
			return evalExpr(env, x, key)
		}
		v, err := evalAggExpr(env, x.X, key, rows)
		if err != nil {
			return rdf.Term{}, err
		}
		return evalUnary(env, sparql.ExprUnary{Op: x.Op, X: sparql.ExprTerm{Term: v}}, key)
	default:
		return evalExpr(env, e, key)
	}
}

// evalAggregate computes one aggregate call over the group rows.
func evalAggregate(env *Env, call sparql.ExprCall, rows []rdf.Binding) (rdf.Term, error) {
	// Collect the argument values over the group.
	var values []rdf.Term
	if call.Star {
		values = make([]rdf.Term, len(rows))
		for i := range rows {
			values[i] = rdf.Integer(int64(i)) // placeholders; COUNT(*) counts rows
		}
		if call.Distinct {
			// COUNT(DISTINCT *) counts distinct rows.
			seen := map[string]bool{}
			values = values[:0]
			for _, r := range rows {
				k := r.Key(r.Vars())
				if !seen[k] {
					seen[k] = true
					values = append(values, rdf.Integer(0))
				}
			}
		}
	} else {
		if len(call.Args) != 1 {
			return rdf.Term{}, typeErrf("%s takes 1 argument", call.Func)
		}
		for _, r := range rows {
			if v, err := evalExpr(env, call.Args[0], r); err == nil {
				values = append(values, v)
			}
		}
		if call.Distinct {
			seen := map[rdf.Term]bool{}
			dedup := values[:0]
			for _, v := range values {
				if !seen[v] {
					seen[v] = true
					dedup = append(dedup, v)
				}
			}
			values = dedup
		}
	}

	return aggCompute(call, values)
}

// aggCompute folds the collected argument values of one aggregate call.
// It is shared by the row-path evalAggregate and the vectorized grouping,
// which collect values differently (expression evaluation per row vs column
// decode) but must fold identically.
func aggCompute(call sparql.ExprCall, values []rdf.Term) (rdf.Term, error) {
	switch call.Func {
	case "COUNT":
		return rdf.Integer(int64(len(values))), nil
	case "SUM":
		sum := rdf.Term(rdf.Integer(0))
		for _, v := range values {
			s, err := arith("+", sum, v)
			if err != nil {
				return rdf.Term{}, err
			}
			sum = s
		}
		return sum, nil
	case "AVG":
		if len(values) == 0 {
			return rdf.Integer(0), nil
		}
		sum := rdf.Term(rdf.Integer(0))
		for _, v := range values {
			s, err := arith("+", sum, v)
			if err != nil {
				return rdf.Term{}, err
			}
			sum = s
		}
		return arith("/", sum, rdf.Integer(int64(len(values))))
	case "MIN", "MAX":
		if len(values) == 0 {
			return rdf.Term{}, typeErrf("%s of empty group", call.Func)
		}
		best := values[0]
		for _, v := range values[1:] {
			cmp := orderCompare(v, best)
			if (call.Func == "MIN" && cmp < 0) || (call.Func == "MAX" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	case "SAMPLE":
		if len(values) == 0 {
			return rdf.Term{}, typeErrf("SAMPLE of empty group")
		}
		return values[0], nil
	case "GROUP_CONCAT":
		sep := call.Sep
		if sep == "" {
			sep = " "
		}
		parts := make([]string, 0, len(values))
		for _, v := range values {
			parts = append(parts, v.Value)
		}
		return rdf.NewLiteral(strings.Join(parts, sep)), nil
	}
	return rdf.Term{}, typeErrf("unknown aggregate %s", call.Func)
}

// snapshotHasSolution evaluates an operator tree against the *current*
// store contents (no blocking on growth) and reports whether at least one
// solution exists. Used by EXISTS.
func snapshotHasSolution(env *Env, op algebra.Operator) bool {
	return len(snapshotSolutions(env, op, 1)) > 0
}

// snapshotSolutions evaluates op over the current snapshot, returning up to
// limit solutions (limit <= 0 means all). This is a simple recursive
// evaluator over materialized intermediate results; EXISTS patterns are
// small, so this is fine.
func snapshotSolutions(env *Env, op algebra.Operator, limit int) []rdf.Binding {
	var eval func(op algebra.Operator) []rdf.Binding
	eval = func(op algebra.Operator) []rdf.Binding {
		switch x := op.(type) {
		case algebra.Unit:
			return []rdf.Binding{rdf.NewBinding()}
		case algebra.Pattern:
			var out []rdf.Binding
			for _, t := range env.Store.MatchNow(x.Triple) {
				b, ok := rdf.NewBinding().MatchPattern(x.Triple, t)
				if !ok {
					continue
				}
				if b, ok = applyGraphConstraint(env, x.Graph, t, b); ok {
					out = append(out, b)
				}
			}
			return out
		case algebra.PathPattern:
			return evalPathSnapshot(env, x)
		case algebra.Join:
			ls, rs := eval(x.Left), eval(x.Right)
			var out []rdf.Binding
			for _, l := range ls {
				for _, r := range rs {
					if m, ok := l.Merge(r); ok {
						out = append(out, m)
					}
				}
			}
			return out
		case algebra.Union:
			return append(eval(x.Left), eval(x.Right)...)
		case algebra.Filter:
			var out []rdf.Binding
			for _, b := range eval(x.Input) {
				if v, err := evalExpr(env, x.Expr, b); err == nil {
					if ok, err := v.EffectiveBooleanValue(); err == nil && ok {
						out = append(out, b)
					}
				}
			}
			return out
		case algebra.LeftJoin:
			ls, rs := eval(x.Left), eval(x.Right)
			var out []rdf.Binding
			for _, l := range ls {
				matched := false
				for _, r := range rs {
					if m, ok := l.Merge(r); ok {
						out = append(out, m)
						matched = true
					}
				}
				if !matched {
					out = append(out, l)
				}
			}
			return out
		case algebra.Extend:
			var out []rdf.Binding
			for _, b := range eval(x.Input) {
				if v, err := evalExpr(env, x.Expr, b); err == nil {
					if e, ok := b.Extend(x.Var, v); ok {
						out = append(out, e)
						continue
					}
				}
				out = append(out, b)
			}
			return out
		case algebra.Values:
			return x.Rows
		case algebra.Distinct:
			seen := map[string]bool{}
			var out []rdf.Binding
			vars := x.Input.Vars()
			for _, b := range eval(x.Input) {
				k := b.Key(vars)
				if !seen[k] {
					seen[k] = true
					out = append(out, b)
				}
			}
			return out
		case algebra.Project:
			var out []rdf.Binding
			for _, b := range eval(x.Input) {
				if len(x.Items) == 0 {
					out = append(out, b)
					continue
				}
				res := rdf.NewBinding()
				for _, item := range x.Items {
					if item.Expr == nil {
						if t, ok := b.Get(item.Var); ok {
							res[item.Var] = t
						}
					} else if v, err := evalExpr(env, item.Expr, b); err == nil {
						res[item.Var] = v
					}
				}
				out = append(out, res)
			}
			return out
		case algebra.Slice:
			all := eval(x.Input)
			if x.Offset > 0 {
				if x.Offset >= len(all) {
					return nil
				}
				all = all[x.Offset:]
			}
			if x.Limit >= 0 && x.Limit < len(all) {
				all = all[:x.Limit]
			}
			return all
		default:
			return nil
		}
	}
	out := eval(op)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
